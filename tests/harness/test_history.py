"""Bench-history regression watch: series assembly, step flags, and
ingestion of the repo's actually-committed BENCH payloads."""

import json
import os
from pathlib import Path

import pytest

from repro.harness.bench import BENCH_SCHEMA_VERSION
from repro.harness.history import (
    TREND_METRICS,
    discover_bench_files,
    flag_steps,
    format_history_report,
    load_bench_history,
    metric_tolerance,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def make_payload(suite="micro", created=1_000.0, wall_min=1.0,
                 wall_median=1.1, events_per_sec=1e6, rss=1e8,
                 scenarios=("steady",)):
    entries = {}
    for name in scenarios:
        entries[name] = {
            "wall_s": {
                "median": wall_median,
                "min": wall_min,
                "iqr": 0.01,
                "samples": [wall_min, wall_median],
            },
            "events": 100_000,
            "sim_ns": 10**9,
            "events_per_sec": events_per_sec,
            "sim_ns_per_wall_s": 10**9 / wall_min,
            "peak_rss_bytes": rss,
            "counters": {},
            "top_handlers": [],
        }
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "suite": suite,
        "description": "synthetic",
        "created_unix": created,
        "python": "3.x",
        "platform": "test",
        "repeats": 2,
        "scenarios": entries,
    }


def write_payload(path, payload):
    path.write_text(json.dumps(payload))
    return str(path)


class TestLoadHistory:
    def test_series_ordered_by_created_unix(self, tmp_path):
        # Write newest first so ordering comes from stamps, not paths.
        newer = write_payload(
            tmp_path / "a_new.json", make_payload(created=2000.0, wall_min=2.0)
        )
        older = write_payload(
            tmp_path / "b_old.json", make_payload(created=1000.0, wall_min=1.0)
        )
        history = load_bench_history([newer, older])
        series = history.get("micro", "steady", "wall_s.min")
        assert [p.value for p in series.points] == [1.0, 2.0]
        assert [p.source for p in series.points] == [older, newer]

    def test_one_series_per_metric(self, tmp_path):
        path = write_payload(tmp_path / "m.json", make_payload())
        history = load_bench_history([path])
        metrics = {s.metric for s in history.series}
        assert metrics == {m for m, _ in TREND_METRICS}
        assert history.suites() == ["micro"]

    def test_rejected_surfaced_not_dropped(self, tmp_path):
        good = write_payload(tmp_path / "good.json", make_payload())
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": 99}')
        history = load_bench_history([good, str(bad)])
        assert history.sources == [good]
        assert len(history.rejected) == 1
        assert history.rejected[0][0] == str(bad)
        assert "rejected payloads" in format_history_report(history)

    def test_get_unknown_series_raises(self, tmp_path):
        history = load_bench_history(
            [write_payload(tmp_path / "m.json", make_payload())]
        )
        with pytest.raises(KeyError):
            history.get("micro", "steady", "nope")


class TestStepFlags:
    def test_wall_regression_flagged(self, tmp_path):
        paths = [
            write_payload(tmp_path / "v1.json",
                          make_payload(created=1000.0, wall_min=1.0)),
            write_payload(tmp_path / "v2.json",
                          make_payload(created=2000.0, wall_min=2.0)),
        ]
        flags = flag_steps(load_bench_history(paths))
        wall = [f for f in flags if f.metric == "wall_s.min"]
        assert len(wall) == 1
        assert wall[0].direction == "regressed"
        assert wall[0].ratio == pytest.approx(2.0)
        assert "wall_s.min regressed 2.00x" in wall[0].describe()

    def test_improvement_direction_and_throughput_inversion(self, tmp_path):
        # events/s doubling is an improvement; wall halving likewise.
        paths = [
            write_payload(tmp_path / "v1.json",
                          make_payload(created=1000.0, wall_min=2.0,
                                       wall_median=2.1, events_per_sec=1e6)),
            write_payload(tmp_path / "v2.json",
                          make_payload(created=2000.0, wall_min=1.0,
                                       wall_median=1.05, events_per_sec=2e6)),
        ]
        flags = flag_steps(load_bench_history(paths))
        assert flags and all(f.direction == "improved" for f in flags)

    def test_within_tolerance_not_flagged(self, tmp_path):
        tol = metric_tolerance("wall_s.min")
        paths = [
            write_payload(tmp_path / "v1.json",
                          make_payload(created=1000.0, wall_min=1.0,
                                       wall_median=1.0)),
            write_payload(tmp_path / "v2.json",
                          make_payload(created=2000.0,
                                       wall_min=1.0 + tol * 0.5,
                                       wall_median=1.0 + tol * 0.5)),
        ]
        assert flag_steps(load_bench_history(paths)) == []

    def test_tolerance_scale_widens_band(self, tmp_path):
        paths = [
            write_payload(tmp_path / "v1.json",
                          make_payload(created=1000.0, wall_min=1.0)),
            write_payload(tmp_path / "v2.json",
                          make_payload(created=2000.0, wall_min=1.25)),
        ]
        history = load_bench_history(paths)
        assert any(
            f.metric == "wall_s.min" for f in flag_steps(history)
        )
        scaled = flag_steps(history, tolerance_scale=10.0)
        assert not any(f.metric == "wall_s.min" for f in scaled)

    def test_flags_sorted_worst_first(self, tmp_path):
        paths = [
            write_payload(
                tmp_path / "v1.json",
                make_payload(created=1000.0, scenarios=("a", "b")),
            ),
        ]
        payload = make_payload(created=2000.0, scenarios=("a", "b"))
        payload["scenarios"]["a"]["wall_s"]["min"] = 3.0
        payload["scenarios"]["b"]["wall_s"]["min"] = 2.0
        paths.append(write_payload(tmp_path / "v2.json", payload))
        flags = [
            f for f in flag_steps(load_bench_history(paths))
            if f.metric == "wall_s.min"
        ]
        assert [f.scenario for f in flags] == ["a", "b"]


class TestCommittedPayloads:
    """The repo's own committed BENCH trajectory must always ingest."""

    def test_discovery_finds_committed_payloads(self):
        paths = discover_bench_files(str(REPO_ROOT))
        assert len(paths) >= 6
        names = {os.path.basename(p) for p in paths}
        assert "BENCH_micro.json" in names
        assert "micro.json" in names  # benchmarks/baselines anchor

    def test_committed_trajectory_ingests_cleanly(self):
        history = load_bench_history(discover_bench_files(str(REPO_ROOT)))
        assert not history.rejected
        assert len(history.sources) >= 6
        assert {"micro", "telemetry", "datacenter"} <= set(history.suites())
        # Every suite contributes at least one multi-point series.
        assert any(len(s.points) >= 2 for s in history.series)
        report = format_history_report(history)
        assert "Bench history" in report

    def test_committed_trajectory_has_no_regressions(self):
        """The repo gate: committed payloads never step-regress."""
        history = load_bench_history(discover_bench_files(str(REPO_ROOT)))
        regressions = [
            f for f in flag_steps(history) if f.direction == "regressed"
        ]
        assert regressions == [], [f.describe() for f in regressions]
