"""Config-hash stability: equal configs hash equal, different ones don't."""

import dataclasses

import pytest

from repro.cluster.simulation import ExperimentConfig
from repro.core.config import NCAPConfig
from repro.cpu.config import ProcessorConfig
from repro.harness import canonical_json, config_hash
from repro.oskernel.netstack import NetStackCosts


class TestConfigHashStability:
    def test_default_vs_explicit_defaults(self):
        """Spelling out the defaults must not change the hash."""
        implicit = ExperimentConfig()
        explicit = ExperimentConfig(
            app="apache",
            policy="perf",
            target_rps=24_000.0,
            n_clients=3,
            seed=1,
            processor=ProcessorConfig(),
            netstack=NetStackCosts(),
        )
        assert implicit == explicit
        assert config_hash(implicit) == config_hash(explicit)

    def test_keyword_order_irrelevant(self):
        a = ExperimentConfig(app="memcached", seed=7, target_rps=50_000)
        b = ExperimentConfig(target_rps=50_000, seed=7, app="memcached")
        assert config_hash(a) == config_hash(b)

    def test_int_float_equivalence(self):
        """24_000 and 24_000.0 are dataclass-equal; they must hash alike."""
        assert ExperimentConfig(target_rps=24_000) == ExperimentConfig(
            target_rps=24_000.0
        )
        assert config_hash(ExperimentConfig(target_rps=24_000)) == config_hash(
            ExperimentConfig(target_rps=24_000.0)
        )

    def test_nested_processor_override_changes_hash(self):
        base = ExperimentConfig()
        tweaked = ExperimentConfig(
            processor=dataclasses.replace(ProcessorConfig(), n_cores=8)
        )
        assert config_hash(base) != config_hash(tweaked)

    def test_nested_netstack_override_changes_hash(self):
        base = ExperimentConfig()
        costs = NetStackCosts()
        tweaked = ExperimentConfig(
            netstack=dataclasses.replace(
                costs, rx_per_packet_cycles=costs.rx_per_packet_cycles + 1
            )
        )
        assert config_hash(base) != config_hash(tweaked)

    def test_ncap_config_and_scalar_overrides_change_hash(self):
        base = config_hash(ExperimentConfig())
        assert base != config_hash(
            ExperimentConfig(ncap_base_config=NCAPConfig(rht_rps=99_000))
        )
        assert base != config_hash(ExperimentConfig(nic_dma_latency_ns=50_000))
        assert base != config_hash(ExperimentConfig(seed=2))

    def test_hash_is_hex_digest(self):
        digest = config_hash(ExperimentConfig())
        assert len(digest) == 64
        int(digest, 16)  # raises if not hex


class TestCanonicalJson:
    def test_dict_key_order_irrelevant(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_nested_dataclasses_serialize(self):
        text = canonical_json(ExperimentConfig())
        assert "ExperimentConfig" in text and "ProcessorConfig" in text

    def test_unserializable_rejected(self):
        with pytest.raises(TypeError):
            canonical_json(object())

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            canonical_json(float("nan"))
