"""SweepSpec expansion and RunSpec config construction."""

from repro.apps.workload import load_level
from repro.cluster.policies import PolicyConfig
from repro.harness import RunSettings, RunSpec, SweepSpec
from repro.sim.units import MS

TINY = RunSettings(warmup_ns=5 * MS, measure_ns=40 * MS, drain_ns=30 * MS, seed=2)


class TestSweepExpansion:
    def test_axis_order_and_count(self):
        sweep = SweepSpec(
            apps=("apache", "memcached"),
            policies=("perf", "ond.idle"),
            loads=("low",),
            seeds=(1, 2),
            settings=TINY,
        )
        specs = sweep.expand()
        assert len(specs) == 2 * 2 * 1 * 2
        # app is the outermost axis, seed the innermost.
        assert [s.app for s in specs[:4]] == ["apache"] * 4
        assert [s.seed for s in specs[:4]] == [1, 2, 1, 2]
        assert [s.policy for s in specs[:4]] == [
            "perf", "perf", "ond.idle", "ond.idle",
        ]

    def test_named_loads_resolve_per_app(self):
        specs = SweepSpec(
            apps=("apache", "memcached"), loads=("low",), settings=TINY
        ).expand()
        by_app = {s.app: s for s in specs}
        assert by_app["apache"].target_rps == load_level("apache", "low").target_rps
        assert (
            by_app["memcached"].target_rps
            == load_level("memcached", "low").target_rps
        )
        assert all(s.load == "low" for s in specs)

    def test_numeric_loads_used_directly(self):
        (spec,) = SweepSpec(loads=(12_500,), settings=TINY).expand()
        assert spec.target_rps == 12_500.0
        assert spec.load is None

    def test_default_seed_axis_uses_settings_seed(self):
        (spec,) = SweepSpec(settings=TINY).expand()
        assert spec.seed == TINY.seed

    def test_grid_merges_over_base_overrides(self):
        sweep = SweepSpec(
            settings=TINY,
            overrides={"n_clients": 2, "ondemand_period_ns": 5 * MS},
            grid=[{"ondemand_period_ns": 10 * MS}, {}],
        )
        first, second = sweep.expand()
        assert first.overrides == {"n_clients": 2, "ondemand_period_ns": 10 * MS}
        assert second.overrides == {"n_clients": 2, "ondemand_period_ns": 5 * MS}


class TestRunSpecConfig:
    def test_settings_and_overrides_reach_config(self):
        spec = RunSpec(
            app="memcached",
            policy="ncap.cons",
            target_rps=30_000,
            seed=9,
            settings=TINY,
            overrides={"n_clients": 2},
        )
        config = spec.to_config()
        assert config.app == "memcached"
        assert config.policy == "ncap.cons"
        assert config.target_rps == 30_000.0
        assert config.seed == 9
        assert config.n_clients == 2
        assert config.warmup_ns == TINY.warmup_ns
        assert config.measure_ns == TINY.measure_ns
        assert config.drain_ns == TINY.drain_ns

    def test_policy_name_handles_config_objects(self):
        policy = PolicyConfig(
            "ncap.f3", governor="ondemand", cstates=True, ncap="hw", fcons=3
        )
        assert RunSpec(policy=policy).policy_name == "ncap.f3"
        assert RunSpec(policy="perf").policy_name == "perf"

    def test_apply_to_round_trip(self):
        config = RunSpec(seed=TINY.seed, settings=TINY).to_config()
        reapplied = TINY.apply_to(config)
        assert reapplied == config
