"""AttributionSink unit tests over a hand-driven event feed."""

import pytest

from repro.analysis.attribution import COMPONENTS, AttributionSink
from repro.telemetry import Telemetry
from repro.telemetry.events import (
    CStateTransition,
    IrqDelivered,
    RequestAccounting,
    RequestPhase,
)

F_MAX = 1e9  # 1 GHz: cycles == ideal nanoseconds, for easy arithmetic


def make_sink(**kwargs) -> AttributionSink:
    kwargs.setdefault("f_max_hz", F_MAX)
    kwargs.setdefault("keep_records", True)
    sink = AttributionSink(**kwargs)
    telemetry = Telemetry()
    sink.attach(telemetry)
    sink.telemetry = telemetry
    return sink


def span(sink, t, phase, req_id=1, core=None, src="c0"):
    sink.telemetry.probe("request.span").emit(
        RequestPhase(t_ns=t, src=src, req_id=req_id, phase=phase, core=core)
    )


def feed_request(
    sink,
    src="c0",
    req_id=1,
    send=1_000,
    arrival=2_000,
    dma=2_100,
    irq_at=None,
    delivered=2_500,
    rx_core=0,
    svc_start=2_900,
    svc_done=3_900,
    resp_enqueue=4_100,
    resp_start=4_300,
    reply=4_800,
    core=1,
    resp_core=1,
    cpu_ns=1_300,
    cycles=1_100.0,
    stall_ns=100,
    receive=5_100,
):
    """Drive one request through the sink; returns its RTT."""
    telemetry = sink.telemetry
    span(sink, arrival, "arrival", req_id=req_id, src=src)
    span(sink, dma, "dma", req_id=req_id, src=src)
    if irq_at is not None:
        telemetry.probe("irq.delivered").emit(
            IrqDelivered(t_ns=irq_at, kind="hardirq", name="nic-irq",
                         core_id=rx_core)
        )
    span(sink, delivered, "delivered", req_id=req_id, core=rx_core, src=src)
    span(sink, svc_start, "service", req_id=req_id, core=core, src=src)
    telemetry.probe("request.account").emit(
        RequestAccounting(
            t_ns=reply, src=src, req_id=req_id, core=core,
            resp_core=resp_core, svc_enqueue_ns=delivered,
            svc_start_ns=svc_start, svc_done_ns=svc_done,
            resp_enqueue_ns=resp_enqueue, resp_start_ns=resp_start,
            cpu_ns=cpu_ns, cycles=cycles, stall_ns=stall_ns,
        )
    )
    rtt = receive - send
    sink.on_client_rtt(src, req_id, send, rtt)
    return rtt


class TestDecomposition:
    def test_components_sum_to_rtt(self):
        sink = make_sink()
        rtt = feed_request(sink)
        assert sink.count == 1
        assert sink.conservation_violations == []
        record = sink.records[0]
        assert record.total_ns == rtt
        assert sum(record.components.values()) == pytest.approx(rtt, abs=1e-6)
        assert set(record.components) == set(COMPONENTS)

    def test_component_values(self):
        sink = make_sink()
        feed_request(sink, irq_at=2_200)
        comp = sink.records[0].components
        assert comp["wire"] == 1_000          # send 1000 -> arrival 2000
        assert comp["dma"] == 100             # arrival -> dma
        assert comp["coalesce"] == 100        # dma 2100 -> irq 2200
        assert comp["kernel"] == 300          # (delivered - dma) - coalesce
        assert comp["queue"] == 600           # (2900-2500) + (4300-4100)
        assert comp["service"] == 1_100       # cycles at F_max
        assert comp["ramp"] == 300            # cpu+stall - service
        assert comp["preempt"] == 100         # job span - cpu - stall
        assert comp["io"] == 200              # svc_done -> resp_enqueue
        assert comp["tx"] == 300              # reply 4800 -> receive 5100
        assert comp["wake"] == 0

    def test_no_irq_means_zero_coalesce(self):
        sink = make_sink()
        feed_request(sink, irq_at=None)
        comp = sink.records[0].components
        assert comp["coalesce"] == 0
        assert comp["kernel"] == 400          # full delivered - dma

    def test_wake_carved_out_of_kernel_and_queue(self):
        sink = make_sink()
        telemetry = sink.telemetry
        # Rx core 0 wakes at t=2400 after a 150 ns exit (interval
        # [2250, 2400], inside [irq 2200, delivered 2500]); service core 1
        # wakes at t=2800 after 200 ns ([2600, 2800], inside the queue
        # window [delivered 2500, svc_start 2900]).
        telemetry.probe("cpu.cstate").emit(
            CStateTransition(2_400, "cpu", 0, "C6", 3, "wake",
                             exit_latency_ns=150)
        )
        telemetry.probe("cpu.cstate").emit(
            CStateTransition(2_800, "cpu", 1, "C6", 3, "wake",
                             exit_latency_ns=200)
        )
        rtt = feed_request(sink, irq_at=2_200)
        comp = sink.records[0].components
        assert comp["wake"] == 350
        assert comp["kernel"] == 150          # 300 - 150 rx-side wake
        assert comp["queue"] == 400           # 600 - 200 queue-side wake
        assert sink.conservation_violations == []
        assert sum(comp.values()) == pytest.approx(rtt, abs=1e-6)

    def test_conservation_violation_is_reported(self):
        # The decomposition telescopes, so a consistent event feed can
        # never break conservation (that is the point); corrupt the
        # server-side record directly to prove the check trips.
        sink = make_sink()
        span(sink, 2_000, "arrival", req_id=2)
        span(sink, 2_100, "dma", req_id=2)
        span(sink, 2_500, "delivered", req_id=2, core=0)
        sink.telemetry.probe("request.account").emit(
            RequestAccounting(
                t_ns=4_800, src="c0", req_id=2, core=1, resp_core=1,
                svc_enqueue_ns=2_500, svc_start_ns=2_900, svc_done_ns=3_900,
                resp_enqueue_ns=4_100, resp_start_ns=4_300,
                cpu_ns=1_300, cycles=1_100.0, stall_ns=100,
            )
        )
        sink._done[("c0", 2)].components["kernel"] += 5.0
        sink.on_client_rtt("c0", 2, 1_000, 4_100)
        assert len(sink.conservation_violations) == 1
        assert "c0/2" in sink.conservation_violations[0]


class TestBookkeeping:
    def test_unmatched_rtt_counted(self):
        sink = make_sink()
        sink.on_client_rtt("c0", 77, 0, 1_000)
        assert sink.unmatched_rtts == 1
        assert sink.count == 0

    def test_dropped_request_never_matches(self):
        sink = make_sink()
        span(sink, 100, "arrival")
        span(sink, 200, "dma")
        span(sink, 300, "dropped")
        sink.on_client_rtt("c0", 1, 0, 10_000)
        assert sink.unmatched_rtts == 1

    def test_measure_window_filters_by_send_time(self):
        sink = make_sink(measure_window=(1_500, 10_000))
        feed_request(sink, send=1_000)          # before the window
        assert sink.count == 0
        feed_request(sink, req_id=2, send=2_000, arrival=3_000, dma=3_100,
                     delivered=3_500, svc_start=3_900, svc_done=4_900,
                     resp_enqueue=5_100, resp_start=5_300, reply=5_800,
                     receive=6_100)
        assert sink.count == 1

    def test_f_max_required(self):
        sink = make_sink(f_max_hz=None)
        with pytest.raises(RuntimeError, match="f_max_hz"):
            feed_request(sink)

    def test_prune_keeps_open_request_context(self):
        sink = make_sink()
        telemetry = sink.telemetry
        # An old wake interval that still overlaps an open request must
        # survive pruning triggered by later traffic.
        telemetry.probe("cpu.cstate").emit(
            CStateTransition(2_800, "cpu", 1, "C6", 3, "wake",
                             exit_latency_ns=200)
        )
        span(sink, 2_000, "arrival", req_id=1)   # stays open across prunes
        base = 10_000
        for i in range(sink.PRUNE_EVERY + 1):
            t = base + i * 10_000
            feed_request(
                sink, req_id=100 + i, send=t - 1_000, arrival=t,
                dma=t + 100, delivered=t + 500, svc_start=t + 900,
                svc_done=t + 1_900, resp_enqueue=t + 2_100,
                resp_start=t + 2_300, reply=t + 2_800, receive=t + 3_100,
            )
        assert sink._waking[1][0] == (2_600, 2_800)


class TestTails:
    def test_tail_means_cover_slowest_requests(self):
        sink = make_sink(top_k=16)
        for i in range(100):
            # Latencies 3100, 3101, ..., 3199 ns via the receive time.
            feed_request(sink, req_id=i, receive=5_100 + i + 1_000 * 0,
                         send=1_000)
        report = sink.summary()
        assert report.count == 100
        p99 = report.tails["p99"]
        assert p99.count >= 1
        assert p99.mean_total_ns >= report.mean_total_ns
        assert p99.threshold_ns <= 4_100 + 99
        flat = report.to_flat_dict()
        assert flat["count"] == 100.0
        assert "p99.wake_ramp_share" in flat
        assert "mean.wake_ns" in flat

    def test_empty_summary(self):
        sink = make_sink()
        report = sink.summary()
        assert report.count == 0
        assert report.tails == {}
