"""InvariantAuditor: violation detection and clean-run acceptance."""

import pytest

from repro.analysis.attribution import AttributionSink
from repro.analysis.audit import AuditError, InvariantAuditor
from repro.telemetry import Telemetry
from repro.telemetry.events import CStateTransition, RequestPhase


def make_auditor():
    auditor = InvariantAuditor()
    telemetry = Telemetry()
    auditor.attach(telemetry)
    return auditor, telemetry


def emit_span(telemetry, t, phase, req_id=1, src="c0"):
    telemetry.probe("request.span").emit(
        RequestPhase(t_ns=t, src=src, req_id=req_id, phase=phase)
    )


def emit_cstate(telemetry, t, phase, core=0, state="C6", exit_ns=0):
    telemetry.probe("cpu.cstate").emit(
        CStateTransition(t, "cpu", core, state, 3, phase,
                         exit_latency_ns=exit_ns)
    )


class TestSpanInvariants:
    def test_clean_lifecycle_passes(self):
        auditor, telemetry = make_auditor()
        for t, phase in ((10, "arrival"), (20, "dma"), (30, "delivered"),
                         (40, "service"), (50, "reply")):
            emit_span(telemetry, t, phase)
        auditor.finish()
        assert auditor.spans_checked == 1

    def test_out_of_order_phase_detected(self):
        auditor, telemetry = make_auditor()
        emit_span(telemetry, 10, "arrival")
        emit_span(telemetry, 20, "delivered")
        emit_span(telemetry, 30, "dma")          # pipeline order violated
        assert any("out of order" in v for v in auditor.violations)

    def test_time_regression_detected(self):
        auditor, telemetry = make_auditor()
        emit_span(telemetry, 100, "arrival")
        emit_span(telemetry, 90, "dma")
        assert any("time went backwards" in v for v in auditor.violations)

    def test_phase_without_arrival_detected(self):
        auditor, telemetry = make_auditor()
        emit_span(telemetry, 10, "service")
        assert any("without arrival" in v for v in auditor.violations)

    def test_duplicate_arrival_detected(self):
        auditor, telemetry = make_auditor()
        emit_span(telemetry, 10, "arrival")
        emit_span(telemetry, 20, "arrival")
        assert any("duplicate arrival" in v for v in auditor.violations)

    def test_dropped_is_terminal_and_early_only(self):
        auditor, telemetry = make_auditor()
        emit_span(telemetry, 10, "arrival", req_id=1)
        emit_span(telemetry, 20, "dma", req_id=1)
        emit_span(telemetry, 30, "dropped", req_id=1)
        assert auditor.violations == []
        emit_span(telemetry, 10, "arrival", req_id=2)
        emit_span(telemetry, 20, "dma", req_id=2)
        emit_span(telemetry, 30, "delivered", req_id=2)
        emit_span(telemetry, 40, "dropped", req_id=2)
        assert any("dropped after delivery" in v for v in auditor.violations)


class TestCStateInvariants:
    def test_paired_enter_wake_passes(self):
        auditor, telemetry = make_auditor()
        emit_cstate(telemetry, 10, "enter", state="C3")
        emit_cstate(telemetry, 50, "promote", state="C6")
        emit_cstate(telemetry, 90, "wake", state="C6", exit_ns=40)
        auditor.finish()

    def test_wake_without_enter_detected(self):
        auditor, telemetry = make_auditor()
        emit_cstate(telemetry, 10, "wake", state="C6")
        assert any("woke without a matching enter" in v
                   for v in auditor.violations)

    def test_double_enter_detected(self):
        auditor, telemetry = make_auditor()
        emit_cstate(telemetry, 10, "enter", state="C3")
        emit_cstate(telemetry, 20, "enter", state="C6")
        assert any("while in C3" in v for v in auditor.violations)

    def test_wake_state_mismatch_detected(self):
        auditor, telemetry = make_auditor()
        emit_cstate(telemetry, 10, "enter", state="C3")
        emit_cstate(telemetry, 20, "wake", state="C6")
        assert any("woke from C6 but was in C3" in v
                   for v in auditor.violations)


class TestFinish:
    def test_finish_raises_with_all_violations(self):
        auditor, telemetry = make_auditor()
        emit_span(telemetry, 10, "service")
        emit_cstate(telemetry, 10, "wake")
        with pytest.raises(AuditError) as excinfo:
            auditor.finish()
        assert len(excinfo.value.violations) == 2

    def test_adopts_attribution_violations(self):
        auditor, _ = make_auditor()
        sink = AttributionSink(f_max_hz=1e9)
        sink.conservation_violations.append("c0/1: off by 5 ns")
        with pytest.raises(AuditError, match="attribution"):
            auditor.finish(attribution=sink)

    def test_violation_cap(self):
        auditor, telemetry = make_auditor()
        for i in range(auditor.max_violations + 50):
            emit_span(telemetry, 10, "service", req_id=i)
            emit_span(telemetry, 20, "reply", req_id=i)
        assert len(auditor.violations) == auditor.max_violations


class TestClusterChecks:
    def test_clean_run_passes_audit(self):
        from repro.cluster.simulation import ExperimentConfig, run_experiment
        from repro.sim.units import MS

        config = ExperimentConfig(
            app="apache", policy="ond.idle", target_rps=24_000,
            warmup_ns=5 * MS, measure_ns=30 * MS, drain_ns=20 * MS,
        )
        result = run_experiment(config, audit=True)
        assert result.responses_received > 0
