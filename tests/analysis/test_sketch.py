"""Streaming percentile sketches: accuracy, bounds, merging."""

import numpy as np
import pytest

from repro.analysis.sketch import P2Quantile, StreamingSketch


def lognormal_stream(n: int, seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.lognormal(mean=12.0, sigma=0.8, size=n)


class TestP2Quantile:
    def test_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    def test_empty_is_nan(self):
        assert np.isnan(P2Quantile(0.5).value)

    def test_exact_below_five_samples(self):
        est = P2Quantile(0.5)
        for x in (3.0, 1.0, 2.0):
            est.add(x)
        assert est.value == 2.0

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    def test_tracks_lognormal_quantile(self, q):
        data = lognormal_stream(20_000)
        est = P2Quantile(q)
        for x in data:
            est.add(x)
        exact = float(np.quantile(data, q))
        assert est.value == pytest.approx(exact, rel=0.05)
        assert est.count == data.size


class TestStreamingSketch:
    def test_exact_moments(self):
        data = lognormal_stream(5_000)
        sketch = StreamingSketch()
        sketch.extend(data.tolist())
        assert sketch.count == data.size
        assert sketch.mean == pytest.approx(float(data.mean()))
        assert sketch.min == float(data.min())
        assert sketch.max == float(data.max())

    def test_centroid_count_is_bounded(self):
        sketch = StreamingSketch(max_centroids=64)
        sketch.extend(lognormal_stream(50_000).tolist())
        assert sketch.centroid_count() <= 64

    @pytest.mark.parametrize("q", [50, 90, 95, 99, 99.9])
    def test_quantile_accuracy(self, q):
        data = lognormal_stream(30_000)
        sketch = StreamingSketch()
        sketch.extend(data.tolist())
        exact = float(np.percentile(data, q))
        assert sketch.quantile(q) == pytest.approx(exact, rel=0.02)

    def test_extremes_are_exact(self):
        data = lognormal_stream(10_000)
        sketch = StreamingSketch()
        sketch.extend(data.tolist())
        assert sketch.quantile(0) == float(data.min())
        assert sketch.quantile(100) == float(data.max())

    def test_merge_matches_single_sketch(self):
        data = lognormal_stream(20_000)
        left, right = StreamingSketch(), StreamingSketch()
        left.extend(data[:10_000].tolist())
        right.extend(data[10_000:].tolist())
        left.merge(right)
        assert left.count == data.size
        assert left.mean == pytest.approx(float(data.mean()))
        for q in (50, 95, 99):
            exact = float(np.percentile(data, q))
            assert left.quantile(q) == pytest.approx(exact, rel=0.03)

    def test_empty_and_singleton(self):
        sketch = StreamingSketch()
        assert np.isnan(sketch.quantile(50))
        sketch.add(42.0)
        assert sketch.quantile(50) == 42.0
        assert sketch.quantile(99) == 42.0

    def test_rejects_bad_quantile(self):
        sketch = StreamingSketch()
        sketch.add(1.0)
        with pytest.raises(ValueError):
            sketch.quantile(101)

    def test_rejects_tiny_budget(self):
        with pytest.raises(ValueError):
            StreamingSketch(max_centroids=4)
