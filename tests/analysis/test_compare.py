"""Cross-run comparison tests: RunSets, paired diffs, CI gates, sketch
error bounds (the documented-accuracy contract of the paired-diff math)."""

import json
import os

import numpy as np
import pytest

from repro.analysis.compare import (
    AXES,
    MetricDelta,
    RunSet,
    compare,
    diff_records,
    format_compare_report,
    format_runset_summary,
    joules_per_request,
    load_label,
    percentile_ci,
    sketch_rank_halfwidth,
)
from repro.analysis.energy import EnergyAttribution
from repro.analysis.sketch import StreamingSketch
from repro.harness.cache import ResultCache
from repro.harness.record import ResultRecord
from repro.metrics.latency import LatencyStats


def make_record(
    policy="perf",
    app="apache",
    target_rps=24_000.0,
    seed=1,
    values=None,
    latency=None,
    energy_j=5.0,
    responses=None,
    counters=None,
    attribution=None,
    config_hash=None,
):
    """A synthetic ResultRecord built from an explicit latency population."""
    if latency is None:
        if values is None:
            values = np.linspace(1e6, 10e6, 1000)
        latency = LatencyStats.from_values(values)
    responses = responses if responses is not None else latency.count
    record = ResultRecord(
        config_hash=config_hash or f"{app}-{policy}-{target_rps:g}-{seed}",
        app=app,
        policy=policy,
        target_rps=target_rps,
        seed=seed,
        sla_ns=25_000_000,
        meets_sla=True,
        requests_sent=responses,
        responses_received=responses,
        incomplete=0,
        achieved_rps=target_rps,
        avg_power_w=20.0,
        latency_count=latency.count,
        mean_ns=latency.mean_ns,
        p50_ns=latency.p50_ns,
        p90_ns=latency.p90_ns,
        p95_ns=latency.p95_ns,
        p99_ns=latency.p99_ns,
        max_ns=latency.max_ns,
        energy_j=energy_j,
        counters=dict(counters or {}),
        energy_attribution=(
            attribution.to_json_dict() if attribution is not None else {}
        ),
    )
    return record


def make_attribution(governor="ondemand", total=5.0, active=4.0,
                     wasted=0.5, wake=0.25, ramp=0.25):
    return EnergyAttribution(
        governor=governor, total_j=total, active_j=active,
        ramp_j=ramp, wake_j=wake, wasted_shallow_j=wasted,
    )


class TestRunSet:
    def test_sorted_and_indexable(self):
        records = [
            make_record(policy=p, target_rps=rps)
            for p in ("perf", "ncap.cons") for rps in (24_000.0, 12_000.0)
        ]
        rs = RunSet.from_records(records)
        assert len(rs) == 4
        keys = [(r.app, r.target_rps, r.policy, r.seed) for r in rs]
        assert keys == sorted(keys)
        assert rs.axis_values("policy") == ["ncap.cons", "perf"]
        assert rs.axis_values("target_rps") == [12_000.0, 24_000.0]

    def test_select_and_get(self):
        rs = RunSet.from_records([
            make_record(policy="perf"), make_record(policy="ncap.cons"),
        ])
        assert len(rs.select(policy="perf")) == 1
        assert rs.get(policy="perf").policy == "perf"
        with pytest.raises(KeyError):
            rs.get(app="apache")  # two matches
        with pytest.raises(KeyError):
            rs.select(nonsense=1)

    def test_unknown_axis_rejected(self):
        rs = RunSet.from_records([make_record()])
        with pytest.raises(KeyError):
            rs.axis_values("config_hash")
        assert "policy" in AXES

    def test_groups_span_other_axes(self):
        rs = RunSet.from_records([
            make_record(policy=p, target_rps=rps)
            for p in ("perf", "ncap.cons") for rps in (12_000.0, 24_000.0)
        ])
        groups = rs.groups("policy")
        assert len(groups) == 2  # one per load
        for _, by_policy in groups:
            assert set(by_policy) == {"perf", "ncap.cons"}

    def test_from_json_roundtrip(self, tmp_path):
        from repro.metrics.export import export_result_records

        records = [make_record(policy="perf"), make_record(policy="ond")]
        path = export_result_records(records, str(tmp_path / "records.json"))
        rs = RunSet.from_json(path)
        assert len(rs) == 2
        assert rs.get(policy="ond").p99_ns == records[1].p99_ns

    def test_from_cache_dir_skips_corruption(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(make_record(policy="perf"))
        cache.put(make_record(policy="ond"))
        (tmp_path / "corrupt.json").write_text("{not json")
        (tmp_path / "other.txt").write_text("ignored")
        (tmp_path / ".tmp-x.json").write_text("{}")
        rs = RunSet.from_cache_dir(str(tmp_path))
        assert sorted(r.policy for r in rs) == ["ond", "perf"]

    def test_from_cache_dir_missing_dir(self):
        assert len(RunSet.from_cache_dir("/nonexistent/nowhere")) == 0


class TestPercentileCI:
    def test_contains_exact_percentile(self):
        rng = np.random.RandomState(7)
        values = rng.lognormal(mean=14.8, sigma=0.4, size=20_000)
        record = make_record(values=values)
        for q in (50.0, 95.0, 99.0):
            lo, hi = percentile_ci(record, q)
            exact = float(np.percentile(values, q))
            assert lo <= exact <= hi
            assert lo < hi

    def test_halfwidth_shrinks_with_n(self):
        rng = np.random.RandomState(3)
        small = make_record(values=rng.lognormal(15, 0.3, 500))
        large = make_record(values=rng.lognormal(15, 0.3, 50_000))
        lo_s, hi_s = percentile_ci(small, 99)
        lo_l, hi_l = percentile_ci(large, 99)
        assert (hi_l - lo_l) / large.p99_ns < (hi_s - lo_s) / small.p99_ns

    def test_empty_record_nan(self):
        record = make_record(latency=LatencyStats.from_values([]),
                             responses=0)
        lo, hi = percentile_ci(record, 99)
        assert np.isnan(lo) and np.isnan(hi)


class TestMetricDelta:
    def test_delta_rel_significance(self):
        d = MetricDelta("p99_ns", base=10.0, cand=13.0, ci_halfwidth=2.0)
        assert d.delta == pytest.approx(3.0)
        assert d.rel == pytest.approx(0.3)
        assert d.significant
        assert not MetricDelta("x", 10.0, 11.0, ci_halfwidth=2.0).significant

    def test_zero_base_rel_nan(self):
        assert np.isnan(MetricDelta("x", 0.0, 1.0).rel)


class TestDiffRecords:
    def test_identical_records_not_significant(self):
        values = np.linspace(1e6, 9e6, 5_000)
        base = make_record(policy="perf", values=values)
        cand = make_record(policy="ncap.cons", values=values)
        diff = diff_records(base, cand)
        assert diff.base_label == "perf" and diff.cand_label == "ncap.cons"
        for q in ("p50_ns", "p95_ns", "p99_ns"):
            assert diff.metrics[q].delta == 0.0
            assert not diff.metrics[q].significant

    def test_large_shift_significant(self):
        rng = np.random.RandomState(11)
        values = rng.lognormal(15, 0.2, 20_000)
        base = make_record(policy="perf", values=values)
        cand = make_record(policy="ncap.cons", values=values * 2.0)
        diff = diff_records(base, cand)
        assert diff.metrics["p99_ns"].significant
        assert diff.metrics["p99_ns"].delta > 0

    def test_joules_per_request_delta(self):
        base = make_record(policy="perf", energy_j=10.0, responses=1000)
        cand = make_record(policy="ncap.cons", energy_j=5.0, responses=1000)
        diff = diff_records(base, cand)
        assert diff.metrics["joules_per_request"].delta == pytest.approx(
            -0.005
        )
        assert joules_per_request(base) == pytest.approx(0.01)

    def test_energy_components_when_both_attributed(self):
        base = make_record(
            policy="perf", attribution=make_attribution(wasted=1.0)
        )
        cand = make_record(
            policy="ncap.cons", attribution=make_attribution(wasted=0.25)
        )
        diff = diff_records(base, cand)
        assert diff.energy_components["wasted_shallow"].delta == (
            pytest.approx(-0.75)
        )
        assert "total" in diff.energy_components
        plain = diff_records(make_record(), make_record(policy="ond"))
        assert plain.energy_components == {}

    def test_counter_drift_sorted_and_capped(self):
        base = make_record(counters={f"c{i}": 100.0 for i in range(12)})
        cand_counters = {f"c{i}": 100.0 + i for i in range(12)}
        cand = make_record(policy="ond", counters=cand_counters)
        diff = diff_records(base, cand, max_counters=5)
        assert len(diff.counter_drift) == 5
        drifts = [abs(d.rel) for d in diff.counter_drift]
        assert drifts == sorted(drifts, reverse=True)
        assert diff.counter_drift[0].metric == "c11"

    def test_coordinate_label(self):
        diff = diff_records(make_record(), make_record(policy="ond"))
        assert diff.coordinate == "apache@24K seed 1"
        assert load_label(24_000.0) == "24K"
        assert load_label(1234.5) == "1234.5"


class TestCompare:
    def test_pairs_against_baseline_per_group(self):
        rs = RunSet.from_records([
            make_record(policy=p, target_rps=rps)
            for p in ("perf", "ond", "ncap.cons")
            for rps in (12_000.0, 24_000.0)
        ])
        diffs = compare(rs, baseline="perf")
        assert len(diffs) == 4  # 2 loads x 2 non-baseline policies
        assert all(d.base_label == "perf" for d in diffs)
        labels = {(d.cand_label, d.target_rps) for d in diffs}
        assert ("ncap.cons", 12_000.0) in labels

    def test_groups_without_baseline_skipped(self):
        rs = RunSet.from_records([
            make_record(policy="perf", target_rps=12_000.0),
            make_record(policy="ond", target_rps=12_000.0),
            make_record(policy="ond", target_rps=24_000.0),
        ])
        diffs = compare(rs, baseline="perf")
        assert len(diffs) == 1
        assert diffs[0].target_rps == 12_000.0


class TestSketchDeltaBounds:
    """Satellite contract: paired percentile deltas computed from
    streaming-sketch records agree with exact-percentile deltas to within
    the documented rank-error bound (``sketch_rank_halfwidth``)."""

    @staticmethod
    def _value_error_bound(sorted_values, q, max_centroids=128):
        """Max value-space error of a sketch q-percentile: the rank bound
        mapped through the population's order statistics."""
        n = len(sorted_values)
        half = sketch_rank_halfwidth(n, q, max_centroids)
        rank = q / 100.0 * (n - 1)
        lo = sorted_values[max(0, int(np.floor(rank - half)))]
        hi = sorted_values[min(n - 1, int(np.ceil(rank + half)))]
        exact = float(np.percentile(sorted_values, q))
        return max(exact - lo, hi - exact)

    @pytest.mark.parametrize("q,field", [
        (50.0, "p50_ns"), (95.0, "p95_ns"), (99.0, "p99_ns"),
    ])
    def test_sketch_diff_within_documented_bound(self, q, field):
        rng = np.random.RandomState(42)
        base_pop = np.sort(rng.lognormal(14.9, 0.35, 30_000))
        cand_pop = np.sort(rng.lognormal(15.1, 0.45, 30_000))

        def sketch_record(policy, population):
            sketch = StreamingSketch()
            sketch.extend(population.tolist())
            return make_record(
                policy=policy, latency=LatencyStats.from_sketch(sketch)
            )

        base = sketch_record("perf", base_pop)
        cand = sketch_record("ncap.cons", cand_pop)
        diff = diff_records(base, cand)
        exact_delta = float(
            np.percentile(cand_pop, q) - np.percentile(base_pop, q)
        )
        bound = (
            self._value_error_bound(base_pop, q)
            + self._value_error_bound(cand_pop, q)
        )
        assert abs(diff.metrics[field].delta - exact_delta) <= bound

    def test_rank_halfwidth_shape(self):
        # Tightest at the tails (the q(1-q) scale function), never
        # below one sample, and growing linearly with n.
        assert sketch_rank_halfwidth(10_000, 99) < (
            sketch_rank_halfwidth(10_000, 50)
        )
        assert sketch_rank_halfwidth(10, 50) >= 1.0
        assert sketch_rank_halfwidth(20_000, 95) == pytest.approx(
            2 * sketch_rank_halfwidth(10_000, 95)
        )


class TestReports:
    def test_compare_report_content(self):
        rng = np.random.RandomState(5)
        values = rng.lognormal(15, 0.3, 10_000)
        rs = RunSet.from_records([
            make_record(policy="perf", values=values),
            make_record(policy="ncap.cons", values=values * 1.5),
        ])
        report = format_compare_report(compare(rs, baseline="perf"))
        assert "ncap.cons vs perf" in report
        assert "Δp99" in report
        assert format_compare_report([]) == "no paired runs to compare"

    def test_summary_table_content(self):
        rs = RunSet.from_records([
            make_record(policy="perf", energy_j=9.0, responses=1000),
        ])
        summary = format_runset_summary(rs)
        assert "mJ/req" in summary and "9.0000" in summary
        assert "perf" in summary and "24K" in summary

    def test_json_dict_roundtrip_through_runset(self, tmp_path):
        record = make_record(attribution=make_attribution())
        path = tmp_path / "r.json"
        path.write_text(json.dumps(record.to_json_dict()))
        data = json.loads(path.read_text())
        rebuilt = ResultRecord.from_json_dict(data)
        rs = RunSet.from_records([rebuilt])
        assert rs.records[0].energy_attribution_report() is not None
        assert os.path.exists(str(path))
