"""Energy provenance: conservation, governor grading, observer purity.

The contract: the telescoping components (active + ramp + wake + floor +
wasted_shallow) sum to the EnergyReport integral within ±1 µJ on every
policy, the accounting is a pure observer (attaching it never changes
the simulated results), and the payload merges/serializes losslessly.
"""

import json

import pytest

from repro.analysis.energy import (
    CONSERVATION_TOL_J,
    EnergyAttribution,
    attribution_between,
    format_energy_blame,
    format_energy_diff,
    format_governor_misses,
)
from repro.cluster.simulation import ExperimentConfig, run_experiment
from repro.cpu.energy import EnergyReport
from repro.harness.settings import RunSettings
from repro.sim.units import MS

QUICK = RunSettings(warmup_ns=5 * MS, measure_ns=40 * MS, drain_ns=30 * MS, seed=2)


def quick_run(policy, **kwargs):
    config = ExperimentConfig.from_settings(
        QUICK, app="apache", policy=policy, target_rps=24_000.0
    )
    return run_experiment(config, **kwargs)


class TestPayload:
    def attribution(self, **overrides):
        base = dict(
            governor="menu",
            total_j=10.0,
            active_j=6.0,
            ramp_j=0.5,
            wake_j=0.5,
            wasted_shallow_j=1.0,
            floor_j_by_state={"C1": 1.5, "C6": 0.5},
            floor_ns_by_state={"C1": 1000, "C6": 5000},
            decisions={"menu": {"0": {"above": 1, "below": 2, "hit": 3}}},
            above_ns=200,
            below_j=0.9,
        )
        base.update(overrides)
        return EnergyAttribution(**base)

    def test_components_telescope(self):
        attr = self.attribution()
        assert attr.floor_j == pytest.approx(2.0)
        assert attr.components_sum_j == pytest.approx(10.0)
        assert attr.conservation_error_j == pytest.approx(0.0)
        assert attr.component_j("floor") == pytest.approx(2.0)
        assert attr.component_j("active") == pytest.approx(6.0)

    def test_decision_totals(self):
        attr = self.attribution(
            decisions={
                "menu": {"0": {"above": 1, "below": 2, "hit": 3},
                         "1": {"above": 0, "below": 1, "hit": 4}},
                "none": {"0": {"above": 0, "below": 7, "hit": 0}},
            }
        )
        assert attr.decision_totals() == {"above": 1, "below": 10, "hit": 7}
        assert attr.decision_totals("none") == {"above": 0, "below": 7, "hit": 0}

    def test_merge_sums_and_unions(self):
        a = self.attribution()
        b = self.attribution(
            governor="none",
            floor_j_by_state={"C1": 0.5, "C3": 1.0},
            floor_ns_by_state={"C1": 10, "C3": 20},
            decisions={"none": {"0": {"above": 0, "below": 5, "hit": 0}}},
        )
        merged = a.merge(b)
        assert merged.governor == "menu+none"
        assert merged.total_j == pytest.approx(20.0)
        assert merged.n_nodes == 2
        assert merged.floor_j_by_state == pytest.approx(
            {"C1": 2.0, "C3": 1.0, "C6": 0.5}
        )
        assert merged.floor_ns_by_state == {"C1": 1010, "C3": 20, "C6": 5000}
        assert merged.decisions["menu"]["0"] == {"above": 1, "below": 2, "hit": 3}
        assert merged.decisions["none"]["0"] == {"above": 0, "below": 5, "hit": 0}
        assert merged.above_ns == 400
        assert merged.below_j == pytest.approx(1.8)
        # Same-governor merge keeps a single name and adds per-core.
        same = a.merge(self.attribution())
        assert same.governor == "menu"
        assert same.decisions["menu"]["0"] == {"above": 2, "below": 4, "hit": 6}

    def test_json_round_trip(self):
        attr = self.attribution()
        data = json.loads(json.dumps(attr.to_json_dict(), sort_keys=True))
        back = EnergyAttribution.from_json_dict(data)
        assert back == attr

    def test_attribution_between_diffs_snapshots(self):
        start = {
            "governor": "menu",
            "decisions": {"0": {"above": 1, "below": 0, "hit": 2}},
            "above_ns": 100,
            "below_j": 0.1,
            "floor_j_by_state": {"C1": 1.0},
            "floor_ns_by_state": {"C1": 500},
            "wasted_shallow_j": 0.2,
        }
        end = {
            "governor": "menu",
            "decisions": {"0": {"above": 1, "below": 3, "hit": 6},
                          "1": {"above": 2, "below": 0, "hit": 0}},
            "above_ns": 300,
            "below_j": 0.5,
            "floor_j_by_state": {"C1": 1.5, "C6": 2.0},
            "floor_ns_by_state": {"C1": 700, "C6": 900},
            "wasted_shallow_j": 0.9,
        }
        window = EnergyReport(
            energy_j=8.0,
            residency_ns={"run": 100},
            energy_by_mode_j={"run": 4.0, "stall": 0.25, "waking": 0.05},
        )
        attr = attribution_between(start, end, window)
        assert attr.total_j == pytest.approx(8.0)
        assert attr.active_j == pytest.approx(4.0)
        assert attr.ramp_j == pytest.approx(0.25)
        assert attr.wake_j == pytest.approx(0.05)
        assert attr.wasted_shallow_j == pytest.approx(0.7)
        assert attr.floor_j_by_state == pytest.approx({"C1": 0.5, "C6": 2.0})
        assert attr.floor_ns_by_state == {"C1": 200, "C6": 900}
        assert attr.decisions == {
            "menu": {"0": {"above": 0, "below": 3, "hit": 4},
                     "1": {"above": 2, "below": 0, "hit": 0}},
        }
        assert attr.above_ns == 200
        assert attr.below_j == pytest.approx(0.4)


class TestConservation:
    @pytest.mark.parametrize("policy", ["ond.idle", "ncap.cons", "perf"])
    def test_window_conservation_under_audit(self, policy):
        result = quick_run(policy, energy_attribution=True, audit=True)
        attr = result.energy_attribution
        assert attr is not None
        assert abs(attr.conservation_error_j) <= CONSERVATION_TOL_J
        assert attr.total_j == pytest.approx(result.energy.energy_j)
        assert attr.wasted_shallow_j >= -CONSERVATION_TOL_J
        # Floor residency covers exactly the idle-mode window residency.
        idle_ns = sum(
            ns for mode, ns in result.energy.residency_ns.items()
            if mode in ("idle", "C1", "C3", "C6")
        )
        assert sum(attr.floor_ns_by_state.values()) == idle_ns

    def test_perf_policy_grades_against_none_governor(self):
        result = quick_run("perf", energy_attribution=True)
        attr = result.energy_attribution
        assert attr.governor == "none"
        totals = attr.decision_totals()
        # No cpuidle: every long idle period is a "below" miss and all
        # idle joules above the oracle floor are blamed wasted-shallow.
        assert totals["below"] > 0
        assert totals["above"] == 0
        assert attr.wasted_shallow_j > 0.1

    def test_deep_idle_policy_actually_uses_cstates(self):
        result = quick_run("ond.idle", energy_attribution=True)
        attr = result.energy_attribution
        assert attr.governor == "menu"
        assert sum(attr.decision_totals().values()) > 0
        # The menu governor reaches deep states: some C6 floor residency.
        assert attr.floor_ns_by_state.get("C6", 0) > 0


class TestObserverPurity:
    def test_attaching_accounting_changes_nothing(self):
        plain = quick_run("ncap.cons")
        observed = quick_run("ncap.cons", energy_attribution=True)
        assert observed.energy == plain.energy
        assert observed.latency == plain.latency
        assert observed.cstate_entries == plain.cstate_entries
        assert observed.counters == plain.counters
        assert plain.energy_attribution is None
        assert observed.energy_attribution is not None

    def test_record_schema_carries_payload(self):
        from repro.harness.record import ResultRecord

        result = quick_run("ond.idle", energy_attribution=True)
        record = ResultRecord.from_result(result, config_hash="x", seed=2)
        data = record.to_json_dict()
        assert data["energy_attribution"]
        back = ResultRecord.from_json_dict(
            json.loads(json.dumps(data, sort_keys=True))
        )
        rebuilt = back.energy_attribution_report()
        assert rebuilt == result.energy_attribution
        plain_record = ResultRecord.from_result(
            quick_run("ond.idle"), config_hash="x", seed=2
        )
        assert plain_record.energy_attribution == {}
        assert plain_record.energy_attribution_report() is None


class TestReports:
    def rows(self):
        a = quick_run("ond.idle", energy_attribution=True)
        b = quick_run("ncap.cons", energy_attribution=True)
        return [("ond.idle", a.energy_attribution),
                ("ncap.cons", b.energy_attribution)]

    def test_blame_and_miss_tables(self):
        rows = self.rows()
        blame = format_energy_blame(rows, title="test blame")
        assert "test blame" in blame
        assert "wasted" in blame and "ond.idle" in blame
        # C6 column appears even when its floor is exactly 0 J.
        assert "floor C6" in blame
        misses = format_governor_misses(rows)
        assert "menu" in misses and "hit" in misses

    def test_diff_table(self):
        rows = self.rows()
        diff = format_energy_diff(rows[0][0], rows[0][1], rows[1][0], rows[1][1])
        assert "ncap.cons vs ond.idle" in diff
        assert "wasted_shallow" in diff


class TestExperimentPresets:
    def test_headline_preset_runs_and_formats(self):
        from repro.experiments import energy as energy_exp

        result = energy_exp.run("fig4", settings=QUICK, jobs=1)
        assert [row.policy for row in result.rows] == ["ond.idle", "ncap.cons"]
        report = energy_exp.format_report(result, diff="ond.idle")
        assert "Energy provenance: fig4" in report
        assert "Governor decisions" in report
        assert "ncap.cons vs ond.idle" in report

    def test_unknown_preset_and_diff_policy(self):
        from repro.experiments import energy as energy_exp

        with pytest.raises(KeyError, match="unknown energy experiment"):
            energy_exp.run("nope", settings=QUICK, jobs=1)
        result = energy_exp.run("fig4", settings=QUICK, jobs=1)
        with pytest.raises(KeyError, match="no energy row"):
            energy_exp.format_report(result, diff="perf")

    def test_dashboard_energy_block(self):
        from repro.viz.dashboard import _energy_block

        result = quick_run("ond.idle", energy_attribution=True)
        block = _energy_block(result.energy_attribution)
        assert "Energy decomposition" in block
        assert "wasted shallow" in block
        assert "Governor decisions" in block


class TestExperimentCache:
    """``repro energy`` reuses cached attributed records (the --diff fix)."""

    def test_second_run_served_from_cache(self, tmp_path):
        from repro.experiments import energy as energy_exp
        from repro.harness.cache import ResultCache

        cache = ResultCache(str(tmp_path))
        first = energy_exp.run("fig4", settings=QUICK, jobs=1, cache=cache)
        assert cache.stores == 2 and cache.hits == 0
        second = energy_exp.run("fig4", settings=QUICK, jobs=1, cache=cache)
        assert cache.hits == 2 and cache.stores == 2
        for row_a, row_b in zip(first.rows, second.rows):
            assert row_a.policy == row_b.policy
            assert json.dumps(row_a.attribution.to_json_dict()) == (
                json.dumps(row_b.attribution.to_json_dict())
            )
            assert row_a.latency.p99_ns == row_b.latency.p99_ns

    def test_unattributed_cache_entry_upgraded_in_place(self, tmp_path):
        from repro.experiments import energy as energy_exp
        from repro.harness.cache import ResultCache
        from repro.harness.hashing import config_hash
        from repro.harness.record import ResultRecord

        cache = ResultCache(str(tmp_path))
        # Seed the cache the way a plain (unattributed) sweep would.
        preset = energy_exp.PRESETS["fig4"]
        for policy in preset.policies:
            config = energy_exp._policy_config(preset, policy, QUICK)
            result = run_experiment(config)
            record = ResultRecord.from_result(
                result, config_hash=config_hash(config), seed=config.seed
            )
            assert record.energy_attribution_report() is None
            cache.put(record)
        # The energy run must re-simulate (no attribution payload yet)...
        energy_exp.run("fig4", settings=QUICK, jobs=1, cache=cache)
        assert cache.stores == 4  # 2 seeds + 2 upgraded entries
        # ...after which the upgraded entries satisfy a fresh run.
        fresh = ResultCache(str(tmp_path))
        energy_exp.run("fig4", settings=QUICK, jobs=1, cache=fresh)
        assert fresh.hits == 2 and fresh.stores == 0
