"""``profile=`` as a run observer: populated results, unchanged hashes."""

import pytest

from repro.cluster.simulation import Cluster, ExperimentConfig, run_experiment
from repro.harness.hashing import config_hash
from repro.harness.settings import RunSettings
from repro.profiling import SimProfiler
from repro.sim.units import MS

TINY = RunSettings(warmup_ns=5 * MS, measure_ns=30 * MS, drain_ns=20 * MS, seed=3)


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig.from_settings(
        TINY, app="apache", policy="ncap.cons", target_rps=24_000.0
    )


class TestProfileObserver:
    def test_plain_run_has_no_profile(self, config):
        result = run_experiment(config)
        assert result.profile is None

    def test_profile_true_populates_result(self, config):
        result = run_experiment(config, profile=True)
        profile = result.profile
        assert profile is not None
        assert profile.events > 0
        assert profile.sim_ns == config.end_ns
        assert profile.handlers
        subsystems = {h.subsystem for h in profile.handlers}
        # A cluster run exercises handlers across the whole stack.
        assert {"net", "cpu", "apps"} <= subsystems
        share = profile.attributed_wall_ns / profile.loop_wall_ns
        assert share == pytest.approx(1.0, abs=0.01)

    def test_explicit_profiler_instance_is_used(self, config):
        profiler = SimProfiler()
        cluster = Cluster(config, profile=profiler)
        assert cluster.profiler is profiler
        assert cluster.sim.profiler is profiler
        result = cluster.run()
        assert result.profile is not None
        assert result.profile.events == profiler.events

    def test_profile_never_in_config_hash(self, config):
        # The observer changes nothing about the run's identity: the
        # hash is a pure function of the config, and the config
        # dataclass has no profile field for it to leak through.
        before = config_hash(config)
        run_experiment(config, profile=True)
        assert config_hash(config) == before
        assert not hasattr(config, "profile")

    def test_profiled_and_plain_runs_agree(self, config):
        plain = run_experiment(config)
        profiled = run_experiment(config, profile=True)
        assert profiled.responses_received == plain.responses_received
        assert profiled.latency.p99_ns == plain.latency.p99_ns
        assert profiled.energy.energy_j == plain.energy.energy_j
