"""Tests for the simulator self-profiler."""

import json
import pickle

import pytest

from repro.profiling import (
    HandlerStats,
    LoopProfile,
    SimProfiler,
    collapsed_stacks,
    format_top_handlers,
    peak_rss_bytes,
    wall_clock_trace_events,
)
from repro.profiling.profiler import describe_handler
from repro.sim import Simulator


def _chained(sim, n, delay=10):
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < n:
            sim.schedule(delay, tick)

    sim.schedule(0, tick)
    return count


class _Handler:
    def __init__(self):
        self.calls = 0

    def on_event(self):
        self.calls += 1


class TestAttribution:
    def test_per_handler_counts(self):
        sim = Simulator()
        profiler = SimProfiler()
        sim.set_profiler(profiler)
        a, b = _Handler(), _Handler()
        for i in range(30):
            sim.schedule(i, a.on_event)
        for i in range(12):
            sim.schedule(i, b.on_event)
        sim.run()
        profile = profiler.profile()
        by_name = {h.qualname: h for h in profile.handlers}
        assert by_name["_Handler.on_event"].calls == 42
        assert profile.events == 42
        assert sim.events_executed == 42

    def test_attribution_telescopes_to_loop_total(self):
        sim = Simulator()
        profiler = SimProfiler()
        sim.set_profiler(profiler)
        _chained(sim, 50_000)
        sim.run()
        profile = profiler.profile()
        assert profile.loop_wall_ns > 0
        share = profile.attributed_wall_ns / profile.loop_wall_ns
        # The acceptance bound: per-handler attribution (plus the
        # cancelled-pop bucket) sums to the measured loop total within 1%.
        assert share == pytest.approx(1.0, abs=0.01)

    def test_batch_dispatch_telescopes_to_loop_total(self):
        # Same 1% acceptance bound, but driven through the batch path:
        # schedule_batch dispatches whole same-timestamp buckets with one
        # timestamp read per batch, and charges the elapsed wall time to
        # the precomputed handler binding.
        sim = Simulator()
        profiler = SimProfiler()
        sim.set_profiler(profiler)
        count = [0]

        def tick():
            count[0] += 1

        def arm():
            if count[0] < 50_000:
                sim.schedule_batch(10, 500, tick)
                sim.schedule(10, arm)

        sim.schedule(0, arm)
        sim.run()
        profile = profiler.profile()
        assert count[0] == 50_000
        assert profile.events == sim.events_executed
        assert profile.loop_wall_ns > 0
        share = profile.attributed_wall_ns / profile.loop_wall_ns
        assert share == pytest.approx(1.0, abs=0.01)
        by_name = {h.qualname: h for h in profile.handlers}
        tick_key = (
            "TestAttribution.test_batch_dispatch_telescopes_to_loop_total."
            "<locals>.tick"
        )
        assert by_name[tick_key].calls == 50_000

    def test_accumulates_across_runs(self):
        sim = Simulator()
        profiler = SimProfiler()
        sim.set_profiler(profiler)
        handler = _Handler()
        sim.schedule(10, handler.on_event)
        sim.schedule(100, handler.on_event)
        sim.run(until=50)
        sim.run(until=200)
        profile = profiler.profile()
        assert profile.events == 2
        assert profile.sim_ns == 200
        by_name = {h.qualname: h for h in profile.handlers}
        assert by_name["_Handler.on_event"].calls == 2

    def test_detached_profiler_restores_plain_loop(self):
        sim = Simulator()
        profiler = SimProfiler()
        sim.set_profiler(profiler)
        sim.schedule(1, lambda: None)
        sim.run(until=5)
        sim.set_profiler(None)
        sim.schedule(10, lambda: None)
        sim.run()
        assert profiler.events == 1  # second run was unprofiled
        assert sim.events_executed == 2

    def test_fold_bounds_per_callable_memory(self):
        sim = Simulator()
        profiler = SimProfiler(fold_threshold=16)
        sim.set_profiler(profiler)

        def make_closure(i):
            return lambda: None

        for i in range(200):
            sim.schedule(i, make_closure(i))
        sim.run()
        assert len(profiler._record) < 16
        profile = profiler.profile()
        by_name = {h.qualname: h for h in profile.handlers}
        key = "TestAttribution.test_fold_bounds_per_callable_memory.<locals>.make_closure.<locals>.<lambda>"
        assert by_name[key].calls == 200

    def test_same_semantics_as_unprofiled_run(self):
        def drive(sim):
            fired = []
            ev = sim.schedule(10, fired.append, "dead")
            sim.schedule(5, ev.cancel)
            sim.schedule(7, fired.append, "a")
            sim.schedule(7, fired.append, "b")

            def nested():
                fired.append("outer")
                sim.call_now(fired.append, "nested")

            sim.schedule(20, nested)
            sim.run(until=15)
            sim.run(until=40)
            return fired, sim.now, sim.events_executed

        plain = drive(Simulator())
        profiled_sim = Simulator()
        profiled_sim.set_profiler(SimProfiler())
        profiled = drive(profiled_sim)
        assert profiled == plain


def _interior_churn(sim, rounds, t=1_000_000):
    """Schedule triples at ``t`` and cancel the first two: the live third
    entry keeps the cancelled ones *interior*, forcing the lazy tombstone
    path (a lone or trailing cancel would be eagerly unlinked by the
    wheel's tail fast path and never compact), and the 2/3 dead ratio
    keeps the queue above the compaction threshold."""
    for _ in range(rounds):
        doomed = [sim.schedule(t, lambda: None) for _ in range(2)]
        sim.schedule(t, lambda: None)
        for event in doomed:
            event.cancel()


class TestHeapHealth:
    def test_cancelled_pop_accounting(self):
        sim = Simulator()
        profiler = SimProfiler()
        sim.set_profiler(profiler)
        dead = [sim.schedule(5, lambda: None) for _ in range(8)]
        sim.schedule(5, lambda: None)  # live tail keeps the dead interior
        sim.schedule(50, lambda: None)
        for event in dead:
            event.cancel()
        sim.run()
        profile = profiler.profile()
        assert profile.cancelled_pops == 8
        assert profile.cancelled_wall_ns > 0
        assert profile.events == 2

    def test_cancelled_unlinked_accounting(self):
        # The unlink counter is baselined at the start of the first
        # profiled run, so the cancels must happen *during* the run to
        # show up in the profile delta.
        sim = Simulator()
        profiler = SimProfiler()
        sim.set_profiler(profiler)

        def churn():
            for i in range(5):
                sim.schedule(5 + i, lambda: None).cancel()  # tail: unlink

        sim.schedule(1, churn)
        sim.run()
        profile = profiler.profile()
        assert profile.cancelled_unlinked == 5
        assert profile.cancelled_pops == 0
        assert profile.events == 1

    def test_heap_depth_and_compactions(self):
        sim = Simulator()
        profiler = SimProfiler()
        sim.set_profiler(profiler)

        def churn():
            _interior_churn(sim, 400)

        sim.schedule(0, churn)
        sim.run()
        profile = profiler.profile()
        assert profile.compactions >= 1
        assert profile.compacted_events > 0
        assert profile.max_heap_depth >= 1
        assert profile.final_heap_size == sim.heap_size()

    def test_counters_are_deltas_not_lifetime_totals(self):
        sim = Simulator()
        # Unprofiled churn first: compactions predate the profiler.
        _interior_churn(sim, 200)
        before = sim.compactions
        assert before >= 1
        profiler = SimProfiler()
        sim.set_profiler(profiler)
        sim.schedule(1, lambda: None)
        sim.run(until=10)
        profile = profiler.profile()
        assert profile.compactions == sim.compactions - before

    def test_throughput_rates(self):
        sim = Simulator()
        profiler = SimProfiler(checkpoint_every=100)
        sim.set_profiler(profiler)
        _chained(sim, 1_000)
        sim.run()
        profile = profiler.profile()
        assert profile.events_per_wall_s > 0
        assert profile.sim_ns_per_wall_s > 0
        assert len(profile.checkpoints) == 10
        walls = [c[0] for c in profile.checkpoints]
        assert walls == sorted(walls)

    def test_peak_rss_positive_on_linux(self):
        assert peak_rss_bytes() > 0


class TestSerialization:
    def _profile(self):
        sim = Simulator()
        profiler = SimProfiler(checkpoint_every=100)
        sim.set_profiler(profiler)
        _chained(sim, 500)
        sim.run()
        return profiler.profile()

    def test_json_round_trip(self):
        profile = self._profile()
        payload = json.loads(json.dumps(profile.to_json_dict()))
        clone = LoopProfile.from_json_dict(payload)
        assert clone == profile

    def test_schema_mismatch_rejected(self):
        payload = self._profile().to_json_dict()
        payload["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            LoopProfile.from_json_dict(payload)

    def test_picklable(self):
        profile = self._profile()
        assert pickle.loads(pickle.dumps(profile)) == profile


class TestDescribeHandler:
    def test_bound_method(self):
        handler = _Handler()
        qualname, subsystem = describe_handler(handler.on_event)
        assert qualname == "_Handler.on_event"

    def test_repro_subsystem(self):
        sim = Simulator()
        qualname, subsystem = describe_handler(sim.stop)
        assert qualname == "Simulator.stop"
        assert subsystem == "sim"

    def test_partial_unwrapped(self):
        import functools

        def fn(a, b):
            pass

        qualname, _ = describe_handler(functools.partial(fn, 1))
        assert qualname.endswith("fn")


class TestExporters:
    def _profile(self):
        sim = Simulator()
        profiler = SimProfiler(checkpoint_every=50)
        sim.set_profiler(profiler)
        handler = _Handler()
        for i in range(200):
            sim.schedule(i, handler.on_event)
        dead = sim.schedule(500, lambda: None)
        dead.cancel()
        sim.run()
        return profiler.profile()

    def test_top_handler_table(self):
        text = format_top_handlers(self._profile(), n=5)
        assert "_Handler.on_event" in text
        assert "cancelled-event pops" in text
        assert "share" in text

    def test_collapsed_stacks_format(self):
        text = collapsed_stacks(self._profile())
        lines = [line for line in text.strip().splitlines()]
        assert lines
        for line in lines:
            frames, _, weight = line.rpartition(" ")
            assert frames  # at least one frame
            assert int(weight) >= 1
        assert any("_Handler.on_event" in line for line in lines)

    def test_wall_clock_trace_events(self):
        events = wall_clock_trace_events(self._profile())
        json.dumps(events)  # must be JSON-able
        assert all(e["pid"] == 2 for e in events)
        counters = [e for e in events if e["ph"] == "C"]
        assert any(e["name"] == "events/sec" for e in counters)
        assert any(e["name"] == "sim-ns/wall-s" for e in counters)
        bars = [e for e in events if e["ph"] == "X"]
        assert bars and bars[0]["name"] == "_Handler.on_event"
        # The stacked bar lays handlers end to end.
        assert bars[0]["ts"] == 0.0

    def test_chrome_sink_merges_wall_lane(self):
        from repro.telemetry import ChromeTraceSink

        sink = ChromeTraceSink()
        sink.add_profile(self._profile())
        events = sink.to_json_dict()["traceEvents"]
        assert any(
            e.get("args", {}).get("name") == "wall-clock (simulator profile)"
            for e in events
            if e.get("ph") == "M"
        )
        assert any(e.get("pid") == 2 and e.get("ph") == "X" for e in events)


class TestHandlerStats:
    def test_key(self):
        stats = HandlerStats("A.b", "net", 1, 2)
        assert stats.key == "net;A.b"
