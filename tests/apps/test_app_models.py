"""Tests for the Apache and Memcached workload models."""

import random

from repro.apps.apache import ApacheApp, ApacheProfile
from repro.apps.memcached import MemcachedApp, MemcachedProfile
from repro.net import make_http_request, make_memcached_request
from repro.net.packet import MSS


def make_apache(profile=None, seed=0):
    # The app only needs sim/scheduler/driver for the pipeline; cost
    # methods are pure given the RNG, so stub those dependencies.
    return ApacheApp(
        None, None, None, None, random.Random(seed), name="server",
        profile=profile or ApacheProfile(),
    )


def make_memcached(profile=None, seed=0):
    return MemcachedApp(
        None, None, None, None, random.Random(seed), name="server",
        profile=profile or MemcachedProfile(),
    )


class TestApacheModel:
    def test_io_latency_mixes_hits_and_misses(self):
        app = make_apache()
        frame = make_http_request("c", "s")
        samples = [app.io_latency_ns(frame) for _ in range(2000)]
        hits = [s for s in samples if s == app.profile.cache_hit_latency_ns]
        misses = [s for s in samples if s != app.profile.cache_hit_latency_ns]
        assert 0.6 < len(hits) / len(samples) < 0.8  # ~70% hit ratio
        assert misses and max(misses) > app.profile.cache_hit_latency_ns
        assert app.cache_hits + app.cache_misses == 2000

    def test_disk_latency_mean_near_profile(self):
        app = make_apache()
        frame = make_http_request("c", "s")
        misses = []
        for _ in range(5000):
            latency = app.io_latency_ns(frame)
            if latency != app.profile.cache_hit_latency_ns:
                misses.append(latency)
        mean = sum(misses) / len(misses)
        assert 0.8 * app.profile.disk_latency_mean_ns < mean < 1.2 * app.profile.disk_latency_mean_ns

    def test_response_sizes_clamped_and_multi_segment(self):
        app = make_apache()
        frame = make_http_request("c", "s")
        sizes = [app.response_bytes(frame) for _ in range(2000)]
        assert min(sizes) >= app.profile.response_size_min
        assert max(sizes) <= app.profile.response_size_max
        # Most Apache responses exceed one MTU (the paper's TxBytesCounter
        # rationale: responses are multi-segment trains).
        multi = sum(1 for s in sizes if s > MSS)
        assert multi / len(sizes) > 0.9

    def test_response_cycles_grow_with_size(self):
        app = make_apache()
        frame = make_http_request("c", "s")
        assert app.response_cycles(frame, 50_000) > app.response_cycles(frame, 1_000)

    def test_service_cycles_constant(self):
        app = make_apache()
        frame = make_http_request("c", "s")
        assert app.service_cycles(frame) == app.profile.service_cycles


class TestMemcachedModel:
    def test_no_io_phase(self):
        app = make_memcached()
        frame = make_memcached_request("c", "s")
        assert app.io_latency_ns(frame) == 0

    def test_values_are_small(self):
        # Atikoglu-style small values: the vast majority fit one packet.
        app = make_memcached()
        frame = make_memcached_request("c", "s")
        sizes = [app.response_bytes(frame) for _ in range(2000)]
        assert min(sizes) >= app.profile.value_size_min
        assert max(sizes) <= app.profile.value_size_max
        single = sum(1 for s in sizes if s <= MSS)
        assert single / len(sizes) > 0.95

    def test_per_request_cpu_less_than_apache(self):
        # The paper: Memcached sustains 2.1x Apache's load on the same box.
        apache, memcached = ApacheProfile(), MemcachedProfile()
        apache_total = apache.service_cycles + apache.response_base_cycles
        mem_total = memcached.service_cycles + memcached.response_base_cycles
        assert mem_total < apache_total
