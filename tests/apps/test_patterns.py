"""Tests for time-varying load patterns."""

import pytest

from repro.apps.client import http_request_factory
from repro.apps.patterns import (
    ConstantPattern,
    DiurnalPattern,
    SpikePattern,
    StepPattern,
    VariableRateClient,
)
from repro.sim import Simulator
from repro.sim.units import MS, SEC


class CapturePort:
    queue_depth = 0

    def __init__(self):
        self.sent = []

    def send(self, frame):
        self.sent.append(frame)


class TestPatterns:
    def test_constant(self):
        pattern = ConstantPattern(5_000)
        assert pattern.rps_at(0) == pattern.rps_at(SEC) == 5_000

    def test_step(self):
        pattern = StepPattern(1_000, 9_000, step_at_ns=100 * MS)
        assert pattern.rps_at(99 * MS) == 1_000
        assert pattern.rps_at(100 * MS) == 9_000

    def test_diurnal_range_and_period(self):
        pattern = DiurnalPattern(1_000, 9_000, period_ns=SEC)
        samples = [pattern.rps_at(t) for t in range(0, SEC, SEC // 100)]
        assert min(samples) == pytest.approx(1_000, rel=0.01)
        assert max(samples) == pytest.approx(9_000, rel=0.01)
        assert pattern.rps_at(0) == pytest.approx(pattern.rps_at(SEC), rel=0.01)

    def test_diurnal_phase_starts_at_valley(self):
        pattern = DiurnalPattern(1_000, 9_000, period_ns=SEC, phase=-1.5707963)
        assert pattern.rps_at(0) == pytest.approx(1_000, rel=0.01)

    def test_spike(self):
        pattern = SpikePattern(1_000, 8_000, spike_start_ns=10 * MS, spike_len_ns=5 * MS)
        assert pattern.rps_at(9 * MS) == 1_000
        assert pattern.rps_at(12 * MS) == 8_000
        assert pattern.rps_at(15 * MS) == 1_000


class TestVariableRateClient:
    def make_client(self, pattern, burst_size=10):
        sim = Simulator()
        client = VariableRateClient(
            sim, "c0", http_request_factory("c0", "server"),
            burst_size=burst_size, burst_period_ns=MS,
            pattern=pattern, share=1.0,
        )
        port = CapturePort()
        client.attach_port(port)
        return sim, client, port

    def test_rate_follows_step(self):
        pattern = StepPattern(5_000, 20_000, step_at_ns=100 * MS)
        sim, client, port = self.make_client(pattern)
        client.start()
        sim.run(until=200 * MS)
        before = sum(1 for f in port.sent if f.created_ns < 100 * MS)
        after = sum(1 for f in port.sent if f.created_ns >= 100 * MS)
        # Same wall time each side: the second half must carry ~4x more.
        assert after > 3 * before

    def test_aggregate_rate_approximates_pattern(self):
        pattern = ConstantPattern(10_000)
        sim, client, port = self.make_client(pattern)
        client.start()
        sim.run(until=500 * MS)
        achieved = len(port.sent) / 0.5
        assert achieved == pytest.approx(10_000, rel=0.1)

    def test_share_scales_rate(self):
        pattern = ConstantPattern(10_000)
        sim = Simulator()
        client = VariableRateClient(
            sim, "c0", http_request_factory("c0", "server"),
            burst_size=10, burst_period_ns=MS, pattern=pattern, share=0.5,
        )
        port = CapturePort()
        client.attach_port(port)
        client.start()
        sim.run(until=500 * MS)
        achieved = len(port.sent) / 0.5
        assert achieved == pytest.approx(5_000, rel=0.1)

    def test_invalid_share(self):
        with pytest.raises(ValueError):
            VariableRateClient(
                Simulator(), "c", lambda t: None, pattern=ConstantPattern(1), share=0,
            )

    def test_rate_floor_prevents_stall(self):
        # A pattern that returns ~0 must not freeze the client forever.
        pattern = ConstantPattern(0.0001)
        sim, client, port = self.make_client(pattern, burst_size=1)
        client.start()
        sim.run(until=3 * SEC)
        assert client.requests_sent >= 2
