"""Tests for load-level presets."""

import pytest

from repro.apps.workload import (
    APACHE_SLA_NS,
    LOAD_LEVELS,
    MEMCACHED_SLA_NS,
    PAPER_APACHE_SLA_NS,
    PAPER_MEMCACHED_SLA_NS,
    burst_arrival_times,
    burst_period_ns,
    default_burst_size,
    load_level,
    sla_for,
)
from repro.sim.units import MS


class TestPresets:
    def test_paper_load_levels(self):
        assert load_level("apache", "low").target_rps == 24_000
        assert load_level("apache", "medium").target_rps == 45_000
        assert load_level("apache", "high").target_rps == 66_000
        assert load_level("memcached", "low").target_rps == 35_000
        assert load_level("memcached", "medium").target_rps == 127_000
        assert load_level("memcached", "high").target_rps == 138_000

    def test_paper_slas_recorded(self):
        assert PAPER_APACHE_SLA_NS == 41 * MS
        assert PAPER_MEMCACHED_SLA_NS == 3 * MS

    def test_repro_memcached_sla_matches_paper(self):
        assert MEMCACHED_SLA_NS == PAPER_MEMCACHED_SLA_NS

    def test_sla_for(self):
        assert sla_for("apache") == APACHE_SLA_NS
        assert sla_for("memcached") == MEMCACHED_SLA_NS
        with pytest.raises(KeyError):
            sla_for("redis")

    def test_unknown_level(self):
        with pytest.raises(KeyError):
            load_level("apache", "extreme")
        with pytest.raises(KeyError):
            load_level("nginx", "low")

    def test_all_levels_carry_their_sla(self):
        for app, levels in LOAD_LEVELS.items():
            for level in levels.values():
                assert level.sla_ns == sla_for(app)


class TestBurstMath:
    def test_period_formula(self):
        # 3 clients x 100 per burst at 30K RPS -> one burst per 10 ms each.
        assert burst_period_ns(30_000, 3, 100) == 10 * MS

    def test_aggregate_rate_preserved(self):
        for rps in (24_000, 45_000, 138_000):
            period = burst_period_ns(rps, 3, 200)
            achieved = 3 * 200 / (period / 1e9)
            assert achieved == pytest.approx(rps, rel=0.001)

    def test_default_burst_sizes(self):
        assert default_burst_size("apache") == 200
        assert default_burst_size("memcached") == 75
        with pytest.raises(KeyError):
            default_burst_size("nginx")

    def test_validation(self):
        with pytest.raises(ValueError):
            burst_period_ns(0, 3, 100)
        with pytest.raises(ValueError):
            burst_period_ns(1000, 0, 100)


class TestBurstArrivalTimes:
    def test_small_burst_arithmetic(self):
        assert burst_arrival_times(100, 3, 7) == [100, 107, 114]

    def test_single_request(self):
        assert burst_arrival_times(42, 1, 1_000) == [42]

    def test_zero_gap_collapses_to_now(self):
        assert burst_arrival_times(10, 4, 0) == [10, 10, 10, 10]

    def test_vectorized_matches_scalar_fallback(self):
        # Above _VECTORIZE_MIN_BURST the numpy path kicks in; it must be
        # bit-identical to the pure-python formula, ints included.
        for size in (1, 31, 32, 200, 1_000):
            times = burst_arrival_times(123_456_789, size, 5_000)
            assert times == [123_456_789 + i * 5_000 for i in range(size)]
            assert all(type(t) is int for t in times)

    def test_validation(self):
        with pytest.raises(ValueError):
            burst_arrival_times(0, 0, 1_000)


class TestGenerateLoadShares:
    def test_uniform_is_equal_and_normalized(self):
        from repro.apps.workload import generate_load_shares

        shares = generate_load_shares("uniform", 8)
        assert len(shares) == 8
        assert all(s == shares[0] for s in shares)
        assert abs(sum(shares) - 1.0) < 1e-12

    def test_uniform_scales_to_a_thousand_servers(self):
        from repro.apps.workload import generate_load_shares

        shares = generate_load_shares("uniform", 1000)
        assert len(shares) == 1000
        assert abs(sum(shares) - 1.0) < 1e-9

    def test_zipf_is_decreasing_and_normalized(self):
        from repro.apps.workload import generate_load_shares

        shares = generate_load_shares("zipf:1.2", 100)
        assert len(shares) == 100
        assert all(a > b for a, b in zip(shares, shares[1:]))
        assert abs(sum(shares) - 1.0) < 1e-9

    def test_zipf_exponent_controls_skew(self):
        from repro.apps.workload import generate_load_shares

        mild = generate_load_shares("zipf:0.5", 50)
        steep = generate_load_shares("zipf:2.0", 50)
        assert steep[0] > mild[0]

    def test_bad_specs_rejected(self):
        from repro.apps.workload import generate_load_shares

        for spec in ("pareto", "zipf", "zipf:", "zipf:abc", "zipf:0", "zipf:-1"):
            with pytest.raises(ValueError):
                generate_load_shares(spec, 4)
        with pytest.raises(ValueError):
            generate_load_shares("uniform", 0)
