"""Tests for the ServerApp request pipeline."""

import random

import pytest

from repro.apps.base import ServerApp
from repro.cpu import ProcessorConfig
from repro.net import NIC, NICDriver, make_http_request, make_response
from repro.net.packet import segments_for
from repro.oskernel import IRQController, NetStackCosts, Scheduler
from repro.sim import Simulator
from repro.sim.units import US


class FixedApp(ServerApp):
    """Deterministic costs for pipeline testing."""

    def __init__(self, *args, io_ns=0, resp_bytes=1000, **kwargs):
        super().__init__(*args, **kwargs)
        self._io_ns = io_ns
        self._resp_bytes = resp_bytes

    def service_cycles(self, frame):
        return 31_000.0  # 10 us at 3.1 GHz

    def io_latency_ns(self, frame):
        return self._io_ns

    def response_bytes(self, frame):
        return self._resp_bytes

    def response_cycles(self, frame, response_bytes):
        return 15_500.0  # 5 us at 3.1 GHz


class SinkPort:
    queue_depth = 0

    def __init__(self):
        self.sent = []

    def send(self, frame):
        self.sent.append(frame)


def make_rig(io_ns=0, resp_bytes=1000):
    sim = Simulator()
    package = ProcessorConfig(n_cores=2).build_package(sim)
    scheduler = Scheduler(sim, package)
    irq = IRQController(sim, package)
    nic = NIC(sim)
    port = SinkPort()
    nic.attach_port(port)
    driver = NICDriver(sim, nic, irq, NetStackCosts())
    app = FixedApp(
        sim, scheduler, driver, NetStackCosts(), random.Random(0),
        name="server", io_ns=io_ns, resp_bytes=resp_bytes,
    )
    driver.packet_sink = app.on_packet
    return sim, app, nic, port


class TestPipeline:
    def test_request_produces_response(self):
        sim, app, nic, port = make_rig()
        app.on_packet(make_http_request("client", "server", req_id=9))
        sim.run()
        assert app.requests_received == 1
        assert app.responses_sent == 1
        assert len(port.sent) == 1
        assert port.sent[0].req_id == 9
        assert port.sent[0].dst == "client"
        assert port.sent[0].kind == "response"

    def test_io_phase_adds_off_cpu_latency(self):
        sim_fast, app_fast, _, port_fast = make_rig(io_ns=0)
        app_fast.on_packet(make_http_request("c", "server", req_id=1))
        sim_fast.run()
        fast_done = sim_fast.now

        sim_slow, app_slow, _, port_slow = make_rig(io_ns=500 * US)
        app_slow.on_packet(make_http_request("c", "server", req_id=1))
        sim_slow.run()
        assert sim_slow.now == fast_done + 500 * US

    def test_io_phase_frees_the_core(self):
        # During I/O, another request's service phase can run.
        sim, app, nic, port = make_rig(io_ns=1_000 * US)
        app.on_packet(make_http_request("c", "server", req_id=1))
        app.on_packet(make_http_request("c", "server", req_id=2))
        sim.run()
        # Both finish ~together (I/O overlapped), not serialized by 1 ms.
        assert sim.now < 1_200 * US

    def test_tx_kernel_cost_scales_with_segments(self):
        sim_small, app_small, _, _ = make_rig(resp_bytes=500)
        app_small.on_packet(make_http_request("c", "server", req_id=1))
        sim_small.run()
        small_time = sim_small.now

        sim_big, app_big, _, _ = make_rig(resp_bytes=50_000)
        app_big.on_packet(make_http_request("c", "server", req_id=1))
        sim_big.run()
        costs = NetStackCosts()
        extra_cycles = costs.tx_message_cycles(segments_for(50_000)) - costs.tx_message_cycles(
            segments_for(500)
        )
        assert sim_big.now - small_time == pytest.approx(
            extra_cycles / 3.1e9 * 1e9, abs=10
        )

    def test_non_request_frames_ignored(self):
        sim, app, nic, port = make_rig()
        app.on_packet(make_response("x", "server", payload_bytes=100))
        sim.run()
        assert app.requests_received == 0
        assert app.non_requests_ignored == 1
        assert port.sent == []
