"""Tests for the open-loop bursty client."""

import random

import pytest

from repro.apps.client import (
    OpenLoopClient,
    http_request_factory,
    memcached_request_factory,
)
from repro.net import make_response
from repro.sim import Simulator
from repro.sim.units import MS, US


class CapturePort:
    queue_depth = 0

    def __init__(self):
        self.sent = []

    def send(self, frame):
        self.sent.append(frame)


def make_client(burst_size=10, period=MS, gap=1_000, jitter=0.0, seed=None):
    sim = Simulator()
    client = OpenLoopClient(
        sim, "client0", http_request_factory("client0", "server"),
        burst_size=burst_size, burst_period_ns=period, intra_burst_gap_ns=gap,
        jitter_rng=random.Random(seed) if seed is not None else None,
        jitter_fraction=jitter,
    )
    port = CapturePort()
    client.attach_port(port)
    return sim, client, port


class TestTrafficGeneration:
    def test_burst_size_and_cadence(self):
        sim, client, port = make_client(burst_size=10, period=MS)
        client.start()
        sim.run(until=3 * MS - 1)
        assert client.requests_sent == 30  # bursts at t=0, 1ms, 2ms

    def test_open_loop_ignores_responses(self):
        # Requests keep flowing even though nothing ever answers.
        sim, client, port = make_client(burst_size=5, period=MS)
        client.start()
        sim.run(until=5 * MS - 1)
        assert client.requests_sent == 25
        assert client.responses_received == 0

    def test_intra_burst_gap(self):
        sim, client, port = make_client(burst_size=3, gap=2_000)
        client.start()
        sim.run(until=MS - 1)
        times = [f.created_ns for f in port.sent]
        assert times == [0, 2_000, 4_000]

    def test_stop_halts_traffic(self):
        sim, client, port = make_client(burst_size=5, period=MS)
        client.start()
        sim.schedule_at(int(2.5 * MS), client.stop)
        sim.run(until=10 * MS)
        assert client.requests_sent == 15

    def test_initial_delay(self):
        sim, client, port = make_client()
        client.start(initial_delay_ns=500 * US)
        sim.run(until=600 * US)
        assert port.sent[0].created_ns == 500 * US

    def test_jitter_perturbs_periods(self):
        sim, client, port = make_client(burst_size=1, period=MS, jitter=0.3, seed=7)
        client.start()
        sim.run(until=20 * MS)
        times = [f.created_ns for f in port.sent]
        gaps = {b - a for a, b in zip(times, times[1:])}
        assert len(gaps) > 1  # not perfectly periodic
        assert all(0.7 * MS <= g <= 1.3 * MS for g in gaps)

    def test_start_idempotent(self):
        sim, client, port = make_client(burst_size=2, period=MS)
        client.start()
        client.start()
        sim.run(until=MS - 1)
        assert client.requests_sent == 2

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            OpenLoopClient(sim, "c", lambda t: None, burst_size=0)
        with pytest.raises(ValueError):
            OpenLoopClient(sim, "c", lambda t: None, burst_period_ns=0)


class TestRttRecording:
    def test_rtt_computed_from_send_time(self):
        sim, client, port = make_client(burst_size=1, period=10 * MS)
        client.start()
        sim.run(until=1)
        req = port.sent[0]
        sim.schedule_at(700 * US, client.receive_frame,
                        make_response("server", "client0", 500, req_id=req.req_id))
        sim.run(until=MS)
        assert client.rtts == [(0, 700 * US)]

    def test_unmatched_response_ignored(self):
        sim, client, port = make_client()
        client.receive_frame(make_response("server", "client0", 100, req_id=99_999))
        assert client.responses_received == 0

    def test_duplicate_response_ignored(self):
        sim, client, port = make_client(burst_size=1, period=10 * MS)
        client.start()
        sim.run(until=1)
        req = port.sent[0]
        resp = make_response("server", "client0", 100, req_id=req.req_id)
        client.receive_frame(resp)
        client.receive_frame(resp)
        assert client.responses_received == 1

    def test_window_filters_by_send_time(self):
        sim, client, port = make_client(burst_size=1, period=MS)
        client.start()
        sim.run(until=int(3.5 * MS))
        for frame in port.sent:
            client.receive_frame(
                make_response("server", "client0", 100, req_id=frame.req_id)
            )
        assert len(client.rtts_in_window(MS, 3 * MS)) == 2
        assert client.sent_in_window(0, 4 * MS) == 4

    def test_outstanding_counts_unanswered(self):
        sim, client, port = make_client(burst_size=4, period=10 * MS)
        client.start()
        sim.run(until=MS)
        assert client.outstanding == 4


class TestFactories:
    def test_http_factory_produces_gets(self):
        factory = http_request_factory("c", "s")
        frame = factory(123)
        assert frame.payload_prefix.startswith(b"GET ")
        assert frame.created_ns == 123
        assert frame.req_id is not None

    def test_memcached_factory_varies_keys(self):
        factory = memcached_request_factory("c", "s", rng=random.Random(1))
        frames = [factory(0) for _ in range(10)]
        assert all(f.payload_prefix.startswith(b"get ") for f in frames)
        assert len({f.req_id for f in frames}) == 10

    def test_req_ids_globally_unique(self):
        a = http_request_factory("a", "s")(0)
        b = memcached_request_factory("b", "s")(0)
        assert a.req_id != b.req_id


class TestBulkBurstPaths:
    """The three burst-emission strategies (single, zero-gap batch,
    vectorized schedule_many) must be externally indistinguishable."""

    def test_large_burst_send_times_exact(self):
        # burst_size >= 32 takes the vectorized schedule_many path.
        sim, client, port = make_client(burst_size=100, period=MS, gap=500)
        client.start()
        sim.run(until=MS - 1)
        times = [f.created_ns for f in port.sent]
        assert times == [i * 500 for i in range(100)]

    def test_zero_gap_burst_sends_all_at_once(self):
        # gap == 0 takes the schedule_batch same-timestamp path.
        sim, client, port = make_client(burst_size=50, period=MS, gap=0)
        client.start()
        sim.run(until=MS - 1)
        assert [f.created_ns for f in port.sent] == [0] * 50
        assert client.requests_sent == 50

    def test_burst_paths_agree_on_cadence(self):
        # Same aggregate traffic regardless of which strategy fires.
        for size, gap in ((1, 1_000), (10, 1_000), (64, 1_000), (64, 0)):
            sim, client, port = make_client(burst_size=size, period=MS, gap=gap)
            client.start()
            sim.run(until=4 * MS - 1)
            assert client.requests_sent == 4 * size

    def test_stop_mid_large_burst_halts_remainder(self):
        sim, client, port = make_client(burst_size=100, period=MS, gap=1_000)
        client.start()
        sim.schedule_at(10_500, client.stop)
        sim.run(until=MS)
        # Requests at 0..10_000 fired (11 of them); the rest were pending
        # when stop() flipped the running flag.
        assert client.requests_sent == 11

    def test_rearm_reuses_burst_timer(self):
        # The periodic re-arm goes through reschedule(): no queue growth
        # across many periods.
        sim, client, port = make_client(burst_size=2, period=MS, gap=100)
        client.start()
        sim.run(until=50 * MS - 1)
        assert client.requests_sent == 100
        assert sim.heap_size() <= 2
