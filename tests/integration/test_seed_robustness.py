"""Seed robustness: the paper-level orderings must not be seed artifacts."""


from repro.cluster.simulation import ExperimentConfig, run_experiment
from repro.sim.units import MS

SEEDS = (11, 23, 47)


def run(policy, seed, app="apache", rps=24_000):
    return run_experiment(
        ExperimentConfig(
            app=app, policy=policy, target_rps=rps,
            warmup_ns=10 * MS, measure_ns=80 * MS, drain_ns=50 * MS, seed=seed,
        )
    )


class TestOrderingsAcrossSeeds:
    def test_energy_ordering_stable(self):
        for seed in SEEDS:
            perf = run("perf", seed)
            perf_idle = run("perf.idle", seed)
            ncap = run("ncap.cons", seed)
            assert perf_idle.energy.energy_j < perf.energy.energy_j
            assert ncap.energy.energy_j < perf.energy.energy_j

    def test_latency_ordering_stable(self):
        for seed in SEEDS:
            perf = run("perf", seed)
            ond_idle = run("ond.idle", seed)
            ncap = run("ncap.cons", seed)
            assert ncap.latency.p95_ns < ond_idle.latency.p95_ns
            assert ncap.latency.p95_ns < 1.4 * perf.latency.p95_ns

    def test_percentiles_vary_but_modestly(self):
        p95s = [run("perf", seed).latency.p95_ns for seed in SEEDS]
        spread = (max(p95s) - min(p95s)) / min(p95s)
        assert 0 < spread < 0.8  # seeds matter, but not qualitatively
