"""Smoke tests: every shipped example must run clean end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

EXAMPLES = [
    ("quickstart.py", ["processor energy", "NCAP activity"]),
    ("memcached_burst_tolerance.py", ["NCAP woke the processor", "IT_HIGH"]),
    ("custom_protocol_monitor.py", ["boost triggered", "bulk traffic ignored"]),
]


@pytest.mark.parametrize("script,expected", EXAMPLES, ids=[e[0] for e in EXAMPLES])
def test_example_runs(script, expected):
    path = os.path.join(EXAMPLES_DIR, script)
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    for needle in expected:
        assert needle in result.stdout


def test_policy_comparison_example_help():
    # The argparse-driven example exposes its load knob.
    path = os.path.join(EXAMPLES_DIR, "apache_policy_comparison.py")
    result = subprocess.run(
        [sys.executable, path, "--help"], capture_output=True, text=True, timeout=60
    )
    assert result.returncode == 0
    assert "--load" in result.stdout
