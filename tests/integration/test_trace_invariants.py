"""Trace-level invariants of full cluster runs.

These tests run with tracing enabled and assert cross-cutting physical
invariants on the recorded channels — the kind of bug that unit tests on
individual modules cannot catch (double-counted bytes, impossible
frequencies, C-state channels out of order).
"""

import pytest

from repro.cluster.simulation import Cluster, ExperimentConfig
from repro.sim.units import MS


def run_traced(policy="ond.idle", app="apache", rps=24_000):
    config = ExperimentConfig(
        app=app, policy=policy, target_rps=rps, collect_traces=True,
        warmup_ns=10 * MS, measure_ns=60 * MS, drain_ns=40 * MS, seed=6,
    )
    cluster = Cluster(config)
    result = cluster.run()
    return config, cluster, result


class TestFrequencyChannel:
    def test_frequencies_within_pstate_table(self):
        config, cluster, result = run_traced()
        channel = result.trace.event_channel("server.cpu.freq_ghz")
        assert len(channel) > 0
        for value in channel.values:
            assert 0.8 - 1e-9 <= value <= 3.1 + 1e-9

    def test_perf_policy_never_changes_frequency(self):
        config, cluster, result = run_traced(policy="perf")
        channel = result.trace.event_channel("server.cpu.freq_ghz")
        assert all(v == pytest.approx(3.1) for v in channel.values)


class TestUtilizationChannel:
    def test_utilization_in_unit_interval(self):
        config, cluster, result = run_traced()
        channel = result.trace.event_channel("server.cpu.util")
        assert len(channel) >= 100  # 1 ms sampling over >=100 ms
        for value in channel.values:
            assert 0.0 <= value <= 1.0

    def test_utilization_reflects_load(self):
        _, _, light = run_traced(policy="perf", rps=12_000)
        _, _, heavy = run_traced(policy="perf", rps=60_000)
        def mean(r):
            values = r.trace.event_channel("server.cpu.util").values
            return sum(values) / len(values)

        assert mean(heavy) > 2 * mean(light)


class TestByteAccounting:
    def test_rx_bytes_match_client_transmissions(self):
        config, cluster, result = run_traced(policy="perf")
        rx_total = result.trace.counter_channel("server.rx_bytes").total
        sent_wire = sum(c.requests_sent for c in cluster.clients)
        # Every request is one small packet; totals must agree to within
        # the handful of frames in flight at the horizon.
        assert rx_total > 0
        per_req = rx_total / cluster.server.nic.rx_frames
        assert cluster.server.nic.rx_frames <= sent_wire
        assert sent_wire - cluster.server.nic.rx_frames < 50
        assert 66 < per_req < 200  # headers + a short GET line

    def test_tx_bytes_track_responses(self):
        config, cluster, result = run_traced(policy="perf")
        tx_total = result.trace.counter_channel("server.tx_bytes").total
        responses = cluster.server.app.responses_sent
        assert responses > 0
        # Apache responses average ~12 kB + headers.
        assert 2_000 < tx_total / responses < 40_000


class TestCStateChannels:
    def test_cstate_channel_alternates_sleep_and_wake(self):
        config, cluster, result = run_traced(policy="ond.idle")
        slept = 0
        for core_id in range(4):
            channel = result.trace.event_channel(f"server.core{core_id}.cstate")
            values = channel.values
            slept += sum(1 for v in values if v > 0)
            # A sleep entry (index > 0) can deepen (promotion) but must
            # return through 0 (awake) before the next sleep entry.
            awake = True
            last_depth = 0
            for v in values:
                if v == 0:
                    awake = True
                    last_depth = 0
                else:
                    if not awake:
                        assert v > last_depth  # promotion only deepens
                    awake = False
                    last_depth = v
        assert slept > 0

    def test_no_cstate_records_when_disabled(self):
        config, cluster, result = run_traced(policy="perf")
        for core_id in range(4):
            channel = result.trace.event_channel(f"server.core{core_id}.cstate")
            assert len(channel) == 0


class TestEnergyConsistency:
    def test_residency_sums_to_window(self):
        config, cluster, result = run_traced(policy="ond.idle")
        total = sum(result.energy.residency_ns.values())
        expected = 4 * config.measure_ns  # 4 cores x window
        assert total == pytest.approx(expected, rel=0.001)

    def test_energy_matches_mode_breakdown(self):
        config, cluster, result = run_traced(policy="ncap.cons")
        assert result.energy.energy_j == pytest.approx(
            sum(result.energy.energy_by_mode_j.values()), rel=1e-9
        )
