"""End-to-end behavioral invariants on short cluster runs.

These are the cross-module checks: policy mechanics must show up in the
measured outputs the way the paper describes, even on abbreviated runs.
"""


from repro.cluster.simulation import ExperimentConfig, run_experiment
from repro.sim.units import MS


def run(policy, app="apache", rps=24_000, **overrides):
    defaults = dict(
        app=app,
        policy=policy,
        target_rps=rps,
        warmup_ns=10 * MS,
        measure_ns=80 * MS,
        drain_ns=50 * MS,
        seed=5,
    )
    defaults.update(overrides)
    return run_experiment(ExperimentConfig(**defaults))


class TestEnergyOrdering:
    def test_cstates_save_energy_at_low_load(self):
        perf = run("perf")
        perf_idle = run("perf.idle")
        assert perf_idle.energy.energy_j < 0.75 * perf.energy.energy_j

    def test_dvfs_saves_energy_at_low_load(self):
        perf = run("perf")
        ond = run("ond")
        assert ond.energy.energy_j < 0.85 * perf.energy.energy_j

    def test_ncap_saves_vs_baseline(self):
        perf = run("perf")
        ncap = run("ncap.aggr")
        assert ncap.energy.energy_j < 0.75 * perf.energy.energy_j

    def test_savings_shrink_at_high_load(self):
        perf = run("perf", rps=66_000)
        ncap = run("ncap.cons", rps=66_000)
        assert ncap.energy.energy_j > 0.9 * perf.energy.energy_j


class TestLatencyOrdering:
    def test_ncap_latency_beats_reactive_governors(self):
        ncap = run("ncap.cons")
        ond_idle = run("ond.idle")
        assert ncap.latency.p95_ns < ond_idle.latency.p95_ns

    def test_ncap_latency_near_perf(self):
        perf = run("perf")
        ncap = run("ncap.cons")
        assert ncap.latency.p95_ns < 1.3 * perf.latency.p95_ns

    def test_memcached_more_f_sensitive_than_apache(self):
        # Section 6: Memcached's response time tracks F (all-CPU), Apache's
        # partially hides behind its fixed-latency disk phase.  Pin the
        # whole package near the minimum frequency and compare the mean
        # slowdown at light, unsaturated load.
        from repro.cpu import ProcessorConfig
        from repro.sim.units import ghz

        slow_cpu = ProcessorConfig(f_max_hz=ghz(0.81), f_min_hz=ghz(0.80))
        ratios = {}
        for app in ("apache", "memcached"):
            # Trickle traffic (one request at a time) isolates per-request
            # service latency from burst queueing.
            fast = run("perf", app=app, rps=3_000, burst_size=1)
            slow = run("perf", app=app, rps=3_000, burst_size=1, processor=slow_cpu)
            ratios[app] = slow.latency.mean_ns / fast.latency.mean_ns
        assert ratios["memcached"] > ratios["apache"] * 1.15

    def test_mean_response_apache_slower_than_memcached(self):
        apache = run("perf", app="apache", rps=24_000)
        memcached = run("perf", app="memcached", rps=35_000)
        assert apache.latency.mean_ns > 2 * memcached.latency.mean_ns


class TestNCAPMechanics:
    def test_hw_ncap_posts_proactive_interrupts(self):
        result = run("ncap.cons")
        assert (
            result.ncap_stats["it_high_posts"] + result.ncap_stats["immediate_rx_posts"]
        ) > 0
        assert result.ncap_stats["it_low_posts"] > 0

    def test_sw_ncap_never_uses_cit_path(self):
        result = run("ncap.sw")
        assert result.ncap_stats["immediate_rx_posts"] == 0

    def test_sw_ncap_higher_latency_than_hw(self):
        sw = run("ncap.sw")
        hw = run("ncap.cons")
        assert sw.latency.p95_ns > hw.latency.p95_ns

    def test_ncap_sleeps_cores_between_bursts(self):
        result = run("ncap.cons")
        assert result.cstate_entries.get("C6", 0) > 0

    def test_aggr_energy_at_most_cons(self):
        cons = run("ncap.cons")
        aggr = run("ncap.aggr")
        assert aggr.energy.energy_j <= cons.energy.energy_j * 1.02


class TestResidency:
    def test_perf_never_leaves_c0(self):
        result = run("perf")
        residency = result.energy.residency_ns
        assert "C6" not in residency
        assert "C1" not in residency

    def test_idle_policy_spends_real_time_in_c6(self):
        result = run("perf.idle")
        residency = result.energy.residency_ns
        total = sum(residency.values())
        assert residency.get("C6", 0) / total > 0.15
