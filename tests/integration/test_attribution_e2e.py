"""End-to-end attribution: conservation, auditing, and the causal claim.

The acceptance criteria of the attribution subsystem:

- every attributed request's components sum to its measured RTT within
  1 ns (checked per request via ``keep_records=True``; the auditor
  additionally fails the run on any violation);
- the invariant auditor passes on full runs across the preset policy
  space (fig4 and the headline preset are covered by the ond.idle/ncap
  runs, fig7 by the medium-load run);
- the paper's causal claim is visible in the decomposition: the wake+ramp
  share of p99 latency is strictly smaller under NCAP than under
  ``ond.idle`` on the headline workload;
- the streaming-sketch latency path agrees with exact aggregation.
"""

import pytest

from repro.analysis.attribution import COMPONENTS, AttributionSink
from repro.cluster.simulation import ExperimentConfig, run_experiment
from repro.sim.units import MS

WARMUP, MEASURE, DRAIN = 10 * MS, 60 * MS, 40 * MS


def attributed_run(policy: str, target_rps: float = 24_000.0):
    config = ExperimentConfig(
        app="apache", policy=policy, target_rps=target_rps,
        warmup_ns=WARMUP, measure_ns=MEASURE, drain_ns=DRAIN,
    )
    sink = AttributionSink(keep_records=True)
    result = run_experiment(config, sinks=[sink], audit=True)
    return result, sink


@pytest.fixture(scope="module")
def ond_idle():
    return attributed_run("ond.idle")


@pytest.fixture(scope="module")
def ncap():
    return attributed_run("ncap.cons")


class TestConservation:
    def test_every_request_sums_to_rtt_within_1ns(self, ond_idle):
        _, sink = ond_idle
        assert sink.count > 100
        assert len(sink.records) == sink.count
        for record in sink.records:
            delta = record.total_ns - sum(record.components.values())
            assert abs(delta) <= 1.0, (
                f"{record.span_id}: conservation off by {delta} ns"
            )
        assert sink.conservation_violations == []

    def test_components_are_nonnegative(self, ond_idle):
        _, sink = ond_idle
        for record in sink.records:
            for name in COMPONENTS:
                assert record.components[name] >= -1e-6, (
                    f"{record.span_id}: {name} = {record.components[name]}"
                )

    def test_all_rtts_matched(self, ond_idle):
        result, sink = ond_idle
        assert sink.unmatched_rtts == 0
        assert sink.count == result.responses_received


class TestAuditedPresets:
    def test_ncap_run_is_clean(self, ncap):
        result, sink = ncap
        # audit=True in the fixture: reaching here means no AuditError.
        assert result.responses_received > 100
        assert sink.conservation_violations == []

    def test_medium_load_perf_run_is_clean(self):
        # The fig7 preset's distinguishing axis: medium load.
        result, sink = attributed_run("perf", target_rps=45_000.0)
        assert result.responses_received > 100
        assert sink.conservation_violations == []


class TestCausalClaim:
    def test_ncap_shrinks_wake_ramp_share_at_p99(self, ond_idle, ncap):
        baseline = ond_idle[0].attribution.tails["p99"]
        treated = ncap[0].attribution.tails["p99"]
        assert treated.wake_ramp_share < baseline.wake_ramp_share

    def test_attribution_lands_in_result(self, ond_idle):
        result, sink = ond_idle
        report = result.attribution
        assert report is not None
        assert report.count == sink.count
        flat = report.to_flat_dict()
        assert flat["p99.wake_ramp_share"] == pytest.approx(
            report.tails["p99"].wake_ramp_share
        )


class TestStreamingLatencyParity:
    def test_sketch_percentiles_match_exact(self):
        config = ExperimentConfig(
            app="apache", policy="ond.idle", target_rps=24_000.0,
            warmup_ns=5 * MS, measure_ns=30 * MS, drain_ns=20 * MS,
        )
        exact = run_experiment(config)
        streamed = run_experiment(config, streaming_latency=True)
        assert streamed.latency.count == exact.latency.count
        assert streamed.requests_sent == exact.requests_sent
        assert streamed.latency.mean_ns == pytest.approx(exact.latency.mean_ns)
        for attr in ("p50_ns", "p95_ns", "p99_ns"):
            assert getattr(streamed.latency, attr) == pytest.approx(
                getattr(exact.latency, attr), rel=0.03
            )
        assert streamed.latency.max_ns == exact.latency.max_ns
