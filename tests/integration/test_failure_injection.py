"""Failure-injection tests: the system degrades, it does not wedge."""


from repro.cluster.simulation import Cluster, ExperimentConfig, run_experiment
from repro.net import NIC, NICDriver, make_http_request
from repro.cpu import ProcessorConfig
from repro.oskernel import IRQController, NetStackCosts
from repro.sim import Simulator
from repro.sim.units import MS


class TestOverload:
    def test_past_saturation_requests_go_incomplete_not_lost(self):
        # Offer 150% of Apache capacity: the run must complete, with the
        # backlog visible as incomplete requests, not a hang or a crash.
        result = run_experiment(
            ExperimentConfig(
                app="apache",
                policy="perf",
                target_rps=100_000,
                warmup_ns=10 * MS,
                measure_ns=60 * MS,
                drain_ns=20 * MS,  # deliberately too short to drain
            )
        )
        assert result.incomplete > 0
        assert result.responses_received > 0
        assert result.requests_sent == result.responses_received + result.incomplete

    def test_tiny_rx_ring_drops_but_keeps_serving(self):
        sim = Simulator()
        package = ProcessorConfig(n_cores=1, initial_pstate=14).build_package(sim)
        irq = IRQController(sim, package)
        nic = NIC(sim, rx_ring_size=8)
        driver = NICDriver(sim, nic, irq, NetStackCosts())
        delivered = []
        driver.packet_sink = delivered.append
        # Flood far faster than a 0.8 GHz core can drain.
        for i in range(500):
            sim.schedule_at(i * 200, nic.receive_frame,
                            make_http_request("c", "s", req_id=i))
        sim.run()
        assert nic.rx_dropped > 0
        assert len(delivered) > 0
        assert len(delivered) + nic.rx_dropped == 500


class TestMisaddressedTraffic:
    def test_switch_drops_unknown_destination_silently(self):
        cluster = Cluster(
            ExperimentConfig(app="apache", policy="perf", target_rps=24_000,
                             warmup_ns=5 * MS, measure_ns=20 * MS, drain_ns=20 * MS)
        )
        # Inject a frame for a node that does not exist.
        cluster.sim.schedule_at(
            0, cluster.switch.receive_frame, make_http_request("ghost", "nowhere")
        )
        result = cluster.run()
        assert cluster.switch.frames_dropped == 1
        assert result.responses_received > 0

    def test_server_ignores_non_request_frames(self):
        from repro.net import make_response

        cluster = Cluster(
            ExperimentConfig(app="apache", policy="perf", target_rps=24_000,
                             warmup_ns=5 * MS, measure_ns=20 * MS, drain_ns=20 * MS)
        )
        for i in range(20):
            cluster.sim.schedule_at(
                i * 100_000, cluster.server.nic.receive_frame,
                make_response("attacker", "server", payload_bytes=5_000),
            )
        result = cluster.run()
        assert cluster.server.app.non_requests_ignored == 20
        assert result.responses_received > 0


class TestPathologicalConfigs:
    def test_ncap_with_zero_matching_templates_never_boosts(self):
        from repro.core import NCAPConfig

        result = run_experiment(
            ExperimentConfig(
                app="apache",
                policy="ncap.cons",
                target_rps=24_000,
                ncap_base_config=NCAPConfig(templates=(b"ZZZZ",)),
                warmup_ns=5 * MS,
                measure_ns=40 * MS,
                drain_ns=30 * MS,
            )
        )
        assert result.ncap_stats["it_high_posts"] == 0
        assert result.responses_received > 0  # still serves, just reactively

    def test_one_core_server_survives(self):
        result = run_experiment(
            ExperimentConfig(
                app="memcached",
                policy="ncap.cons",
                target_rps=20_000,
                processor=ProcessorConfig(n_cores=1),
                warmup_ns=5 * MS,
                measure_ns=40 * MS,
                drain_ns=40 * MS,
            )
        )
        assert result.responses_received > 0

    def test_huge_dma_latency_slows_but_completes(self):
        result = run_experiment(
            ExperimentConfig(
                app="apache",
                policy="ncap.cons",
                target_rps=24_000,
                nic_dma_latency_ns=200_000,  # 200 us per frame
                warmup_ns=5 * MS,
                measure_ns=40 * MS,
                drain_ns=40 * MS,
            )
        )
        assert result.responses_received > 0
