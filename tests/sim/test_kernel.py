"""Tests for the discrete-event kernel.

Most behavior is contractual and must hold for both the timing-wheel
``Simulator`` and the retained ``HeapScheduler`` reference — those tests
are parametrized over the ``sim_cls`` fixture.  Cancellation *accounting*
(eager unlink vs lazy tombstone) is implementation-specific and pinned in
the per-kernel classes at the bottom.
"""

import pytest

from repro.sim import HeapScheduler, SimulationError, Simulator


@pytest.fixture(params=[Simulator, HeapScheduler], ids=["wheel", "heap"])
def sim_cls(request):
    return request.param


@pytest.fixture
def sim(sim_cls):
    return sim_cls()


def test_clock_starts_at_zero(sim):
    assert sim.now == 0


def test_events_fire_in_time_order(sim):
    fired = []
    sim.schedule(30, fired.append, "c")
    sim.schedule(10, fired.append, "a")
    sim.schedule(20, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 30


def test_ties_fire_in_scheduling_order(sim):
    fired = []
    for tag in ("first", "second", "third"):
        sim.schedule(5, fired.append, tag)
    sim.run()
    assert fired == ["first", "second", "third"]


def test_event_scheduled_during_run_executes(sim):
    fired = []

    def outer():
        fired.append("outer")
        sim.schedule(7, fired.append, "inner")

    sim.schedule(3, outer)
    sim.run()
    assert fired == ["outer", "inner"]
    assert sim.now == 10


def test_schedule_at_current_time_during_event_runs_after_ties(sim):
    fired = []

    def outer():
        fired.append("outer")
        sim.call_now(fired.append, "nested")

    sim.schedule(5, outer)
    sim.schedule(5, fired.append, "peer")
    sim.run()
    assert fired == ["outer", "peer", "nested"]


def test_cancelled_event_does_not_fire(sim):
    fired = []
    event = sim.schedule(10, fired.append, "x")
    sim.schedule(5, event.cancel)
    sim.run()
    assert fired == []


def test_cancel_is_idempotent(sim):
    event = sim.schedule(10, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()
    assert sim.events_executed == 0


def test_run_until_stops_before_later_events(sim):
    fired = []
    sim.schedule(10, fired.append, "early")
    sim.schedule(100, fired.append, "late")
    sim.run(until=50)
    assert fired == ["early"]
    assert sim.now == 50  # clock advanced to the window edge


def test_run_until_can_be_resumed(sim):
    fired = []
    sim.schedule(10, fired.append, "a")
    sim.schedule(100, fired.append, "b")
    sim.run(until=50)
    sim.run(until=200)
    assert fired == ["a", "b"]


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_scheduling_in_past_rejected(sim):
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5, lambda: None)


def test_stop_halts_run(sim):
    fired = []
    sim.schedule(1, fired.append, "a")
    sim.schedule(2, sim.stop)
    sim.schedule(3, fired.append, "b")
    sim.run()
    assert fired == ["a"]
    sim.run()
    assert fired == ["a", "b"]


def test_peek_next_time_skips_cancelled(sim):
    event = sim.schedule(5, lambda: None)
    sim.schedule(9, lambda: None)
    event.cancel()
    assert sim.peek_next_time() == 9


def test_pending_count(sim):
    keep = sim.schedule(5, lambda: None)
    drop = sim.schedule(6, lambda: None)
    drop.cancel()
    assert sim.pending_count() == 1
    assert keep.time == 5


def test_events_executed_counter(sim):
    for i in range(5):
        sim.schedule(i, lambda: None)
    sim.run()
    assert sim.events_executed == 5


def test_args_passed_through(sim):
    seen = []
    sim.schedule(1, lambda a, b: seen.append((a, b)), 1, "two")
    sim.run()
    assert seen == [(1, "two")]


class TestFifoContract:
    """Same-timestamp FIFO: scheduling order IS dispatch order, across
    every entrypoint, across ``stop()``/re-``run()``, and mid-batch."""

    def test_mixed_entrypoints_interleave_by_submission_order(self, sim):
        fired = []
        sim.schedule(10, fired.append, "s1")
        sim.schedule_at(10, fired.append, "at1")
        sim.schedule_many([10, 10], fired.append, "m")
        sim.schedule(10, fired.append, "s2")
        sim.schedule_batch(10, 2, fired.append, "b")
        sim.schedule_at(10, fired.append, "at2")
        sim.run()
        assert fired == ["s1", "at1", "m", "m", "s2", "b", "b", "at2"]

    def test_call_now_during_dispatch_runs_after_preexisting_ties(self, sim):
        fired = []

        def head():
            fired.append("head")
            sim.call_now(fired.append, "nested")
            sim.schedule_at(sim.now, fired.append, "at-now")

        sim.schedule(5, head)
        sim.schedule(5, fired.append, "peer1")
        sim.schedule(5, fired.append, "peer2")
        sim.run()
        assert fired == ["head", "peer1", "peer2", "nested", "at-now"]

    def test_order_survives_stop_and_rerun(self, sim):
        fired = []
        sim.schedule(10, fired.append, "a")
        sim.schedule(10, sim.stop)
        sim.schedule(10, fired.append, "b")
        sim.schedule(10, fired.append, "c")
        sim.run()
        assert fired == ["a"]
        # Re-run resumes the same timestamp in the original order.
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.now == 10

    def test_stop_mid_batch_resumes_remainder_in_order(self, sim):
        fired = []

        def ticker(tag):
            fired.append(tag)
            if len(fired) == 2:
                sim.stop()

        sim.schedule_batch(10, 4, ticker, "batch")
        sim.schedule(10, fired.append, "after")  # higher seq, same t
        sim.run()
        assert fired == ["batch", "batch"]
        # The un-dispatched batch remainder precedes the later-scheduled
        # same-timestamp event when the run resumes.
        sim.run()
        assert fired == ["batch", "batch", "batch", "batch", "after"]

    def test_stop_mid_schedule_many_resumes_remainder_in_order(self, sim):
        fired = []

        def ticker(tag):
            fired.append(tag)
            if len(fired) == 1:
                sim.stop()

        sim.schedule_many([10, 10, 10], ticker, "many")
        sim.schedule(10, fired.append, "after")
        sim.run()
        assert fired == ["many"]
        sim.run()
        assert fired == ["many", "many", "many", "after"]


class TestBulkEntrypoints:
    def test_schedule_many_orders_by_time_then_submission(self, sim):
        fired = []
        sim.schedule_many([30, 10, 20, 10], lambda: fired.append(sim.now))
        sim.run()
        assert fired == [10, 10, 20, 30]
        assert sim.events_executed == 4

    def test_schedule_many_empty_is_noop(self, sim):
        sim.schedule_many([], lambda: None)
        sim.run()
        assert sim.events_executed == 0
        assert sim.now == 0

    def test_schedule_many_rejects_past_times(self, sim):
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_many([20, 5], lambda: None)

    def test_schedule_batch_executes_count_times(self, sim):
        count = [0]

        def tick():
            count[0] += 1

        sim.schedule_batch(7, 5, tick)
        sim.run()
        assert count[0] == 5
        assert sim.events_executed == 5
        assert sim.now == 7

    def test_schedule_batch_rejects_nonpositive_count(self, sim):
        with pytest.raises((ValueError, SimulationError)):
            sim.schedule_batch(7, 0, lambda: None)

    def test_schedule_batch_rejects_negative_delay(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule_batch(-1, 3, lambda: None)

    def test_bulk_entries_count_toward_pending(self, sim):
        sim.schedule_batch(10, 5, lambda: None)
        sim.schedule_many([20, 30], lambda: None)
        assert sim.pending_count() == 7
        assert sim.heap_size() == 7


class TestReschedule:
    def test_moves_pending_event(self, sim):
        fired = []
        event = sim.schedule(10, fired.append, "x")
        event = sim.reschedule(event, 50)
        sim.run()
        assert fired == ["x"]
        assert sim.now == 50
        assert event.time == 50

    def test_rearms_fired_event(self, sim):
        fired = []
        cell = [None]

        def tick():
            fired.append(sim.now)
            if sim.now < 30:
                cell[0] = sim.reschedule(cell[0], 10)

        cell[0] = sim.schedule(10, tick)
        sim.run()
        assert fired == [10, 20, 30]

    def test_rearms_cancelled_event(self, sim):
        fired = []
        event = sim.schedule(10, fired.append, "x")
        event.cancel()
        event = sim.reschedule(event, 25)
        sim.run()
        assert fired == ["x"]
        assert sim.now == 25

    def test_rescheduled_event_ties_as_freshly_scheduled(self, sim):
        # A reschedule must order like cancel+schedule: after existing
        # entries at the target timestamp.
        fired = []
        moved = sim.schedule(10, fired.append, "moved")
        sim.schedule(20, fired.append, "existing")
        sim.reschedule(moved, 20)
        sim.run()
        assert fired == ["existing", "moved"]

    def test_single_event_heartbeat_no_growth(self, sim):
        # The ITR-style hot path: one timer re-armed forever must not
        # grow queue state.
        cell = [None]
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 500:
                cell[0] = sim.reschedule(cell[0], 1_000)

        cell[0] = sim.schedule(1_000, tick)
        sim.run()
        assert count[0] == 500
        assert sim.heap_size() == 0


class TestRunEdgeCases:
    def test_stop_then_rerun_resumes_where_it_left_off(self, sim):
        fired = []
        sim.schedule(10, fired.append, "a")
        sim.schedule(20, sim.stop)
        sim.schedule(30, fired.append, "b")
        sim.schedule(40, fired.append, "c")
        assert sim.run(until=100) == 20  # stopped mid-window, clock NOT advanced
        assert fired == ["a"]
        assert sim.run(until=100) == 100  # resumes, drains, advances to window edge
        assert fired == ["a", "b", "c"]

    def test_stop_then_rerun_without_until_drains(self, sim):
        fired = []
        sim.schedule(1, sim.stop)
        sim.schedule(2, fired.append, "late")
        sim.run()
        assert fired == []
        sim.run()
        assert fired == ["late"]
        assert sim.now == 2

    def test_until_before_next_event_advances_clock_exactly(self, sim):
        fired = []
        sim.schedule(100, fired.append, "later")
        assert sim.run(until=40) == 40
        assert sim.now == 40
        assert fired == []
        # The pending event is untouched and fires on the next window.
        assert sim.run(until=100) == 100
        assert fired == ["later"]

    def test_until_with_empty_heap_advances_clock(self, sim):
        assert sim.run(until=70) == 70
        assert sim.now == 70

    def test_peek_next_time_empty_after_draining(self, sim):
        event = sim.schedule(5, lambda: None)
        event.cancel()
        assert sim.peek_next_time() is None
        assert sim.heap_size() == 0

    def test_exception_mid_bucket_preserves_remainder(self, sim):
        fired = []

        def boom():
            raise RuntimeError("handler failed")

        sim.schedule(10, fired.append, "before")
        sim.schedule(10, boom)
        sim.schedule(10, fired.append, "after")
        with pytest.raises(RuntimeError):
            sim.run()
        assert fired == ["before"]
        # The failed handler consumed its slot; the remainder survives
        # and dispatches in order on the next run.
        sim.run()
        assert fired == ["before", "after"]


class TestWheelOverflow:
    """Wheel-only: entries beyond the horizon stage in the overflow list
    and migrate into exact-timestamp buckets on demand."""

    def test_far_future_events_fire_in_order(self):
        sim = Simulator()
        span = Simulator.OVERFLOW_SPAN_NS
        fired = []
        sim.schedule(3 * span, fired.append, "far-b")
        sim.schedule(5, fired.append, "near")
        sim.schedule(3 * span, fired.append, "far-b2")
        sim.schedule(2 * span, fired.append, "far-a")
        sim.run()
        assert fired == ["near", "far-a", "far-b", "far-b2"]
        assert sim.now == 3 * span

    def test_peek_next_time_migrates_overflow(self):
        sim = Simulator()
        t = 10 * Simulator.OVERFLOW_SPAN_NS
        sim.schedule_at(t, lambda: None)
        assert sim.peek_next_time() == t

    def test_overflow_tail_cancel_unlinks_eagerly(self):
        sim = Simulator()
        span = Simulator.OVERFLOW_SPAN_NS
        sim.schedule(2 * span, lambda: None)
        tail = sim.schedule(3 * span, lambda: None)
        before = sim.cancelled_unlinked
        tail.cancel()
        assert sim.cancelled_unlinked == before + 1
        assert sim.heap_size() == 1


class TestWheelCancellation:
    """Wheel-only accounting: tail cancels unlink eagerly; interior
    cancels tombstone, get popped lazily, and trigger compaction."""

    def test_tail_cancel_unlinks_without_tombstone(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        tail = sim.schedule(10, lambda: None)
        tail.cancel()
        assert sim.cancelled_unlinked == 1
        assert sim.cancelled_pending == 0
        assert sim.heap_size() == 1

    def test_sole_bucket_entry_cancel_unlinks(self):
        # An event alone in its bucket is, by definition, the tail.
        sim = Simulator()
        dead = [sim.schedule(5 + i, lambda: None) for i in range(3)]
        sim.schedule(50, lambda: None)
        for event in dead:
            event.cancel()
        assert sim.cancelled_unlinked == 3
        assert sim.heap_size() == 1
        assert sim.peek_next_time() == 50

    def test_interior_cancels_popped_lazily_during_run(self):
        sim = Simulator()
        dead = [sim.schedule(5, lambda: None) for _ in range(10)]
        live = sim.schedule(5, lambda: None)  # keeps the dead ones interior
        sim.schedule(50, lambda: None)
        for event in dead:
            event.cancel()
        assert live.time == 5
        sim.run()
        assert sim.cancelled_pops == 10
        assert sim.events_executed == 2

    def test_peek_next_time_drains_leading_interior_cancels(self):
        sim = Simulator()
        dead = [sim.schedule(5, lambda: None) for _ in range(3)]
        sim.schedule(5, lambda: None)  # live tail keeps them interior
        for event in dead:
            event.cancel()
        assert sim.heap_size() == 4
        assert sim.peek_next_time() == 5
        # Drained, not just skipped: the tombstones left the bucket.
        assert sim.heap_size() == 1
        assert sim.cancelled_pops == 3

    def test_interior_cancel_heavy_workload_compacts(self):
        sim = Simulator()
        events = [sim.schedule(1_000, lambda: None) for _ in range(1_000)]
        live_tail = sim.schedule(1_000, lambda: None)
        for event in events[:900]:
            event.cancel()
        assert sim.compactions >= 1
        assert sim.compacted_events >= 800
        # Dead entries are gone; live ones still fire.
        assert sim.heap_size() < 200
        assert sim.pending_count() == 101
        assert live_tail.time == 1_000
        sim.run()
        assert sim.events_executed == 101

    def test_compaction_preserves_order(self):
        sim = Simulator()
        fired = []
        keep = []
        blocker = sim.schedule(6_000, lambda: None)  # keeps t=5000 cancels interior
        for i in range(200):
            keep.append(sim.schedule(10 + i, fired.append, i))
            sim.schedule(5_000, lambda: None).cancel()
        for i in range(0, 200, 2):  # cancel interleaved survivors too
            keep[i].cancel()
        assert blocker.time == 6_000
        sim.run()
        assert fired == list(range(1, 200, 2))

    def test_small_queues_never_compact(self):
        sim = Simulator()
        for _ in range(Simulator.COMPACT_MIN_SIZE // 2):
            sim.schedule(10, lambda: None).cancel()
        assert sim.compactions == 0

    def test_cancel_after_fire_does_not_corrupt_accounting(self):
        sim = Simulator()
        event = sim.schedule(1, lambda: None)
        sim.run()
        event.cancel()  # already fired: a no-op, _queued is False
        live = [sim.schedule(10, lambda: None) for _ in range(100)]
        for entry in live[:80]:
            entry.cancel()
        assert sim.pending_count() == 20
        sim.run()
        assert sim.events_executed == 21


class TestHeapSchedulerCancellation:
    """Heap-only accounting: every cancel is a lazy tombstone."""

    def test_all_cancels_are_lazy_pops(self):
        sim = HeapScheduler()
        dead = [sim.schedule(5, lambda: None) for _ in range(10)]
        sim.schedule(50, lambda: None)
        for event in dead:
            event.cancel()
        sim.run()
        assert sim.cancelled_pops == 10
        assert sim.events_executed == 1

    def test_peek_next_time_drains_leading_cancelled(self):
        sim = HeapScheduler()
        dead = [sim.schedule(5 + i, lambda: None) for i in range(3)]
        sim.schedule(50, lambda: None)
        for event in dead:
            event.cancel()
        assert sim.heap_size() == 4
        assert sim.peek_next_time() == 50
        assert sim.heap_size() == 1
        assert sim.cancelled_pops == 3

    def test_cancel_heavy_workload_compacts(self):
        sim = HeapScheduler()
        events = [sim.schedule(1_000 + i, lambda: None) for i in range(1_000)]
        for event in events[:900]:
            event.cancel()
        assert sim.compactions >= 1
        assert sim.compacted_events >= 800
        assert sim.heap_size() < 200
        assert sim.pending_count() == 100
        sim.run()
        assert sim.events_executed == 100
