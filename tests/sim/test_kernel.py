"""Tests for the discrete-event kernel."""

import pytest

from repro.sim import SimulationError, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(30, fired.append, "c")
    sim.schedule(10, fired.append, "a")
    sim.schedule(20, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 30


def test_ties_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for tag in ("first", "second", "third"):
        sim.schedule(5, fired.append, tag)
    sim.run()
    assert fired == ["first", "second", "third"]


def test_event_scheduled_during_run_executes():
    sim = Simulator()
    fired = []

    def outer():
        fired.append("outer")
        sim.schedule(7, fired.append, "inner")

    sim.schedule(3, outer)
    sim.run()
    assert fired == ["outer", "inner"]
    assert sim.now == 10


def test_schedule_at_current_time_during_event_runs_after_ties():
    sim = Simulator()
    fired = []

    def outer():
        fired.append("outer")
        sim.call_now(fired.append, "nested")

    sim.schedule(5, outer)
    sim.schedule(5, fired.append, "peer")
    sim.run()
    assert fired == ["outer", "peer", "nested"]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(10, fired.append, "x")
    sim.schedule(5, event.cancel)
    sim.run()
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(10, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()
    assert sim.events_executed == 0


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(10, fired.append, "early")
    sim.schedule(100, fired.append, "late")
    sim.run(until=50)
    assert fired == ["early"]
    assert sim.now == 50  # clock advanced to the window edge


def test_run_until_can_be_resumed():
    sim = Simulator()
    fired = []
    sim.schedule(10, fired.append, "a")
    sim.schedule(100, fired.append, "b")
    sim.run(until=50)
    sim.run(until=200)
    assert fired == ["a", "b"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_scheduling_in_past_rejected():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5, lambda: None)


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.schedule(1, fired.append, "a")
    sim.schedule(2, sim.stop)
    sim.schedule(3, fired.append, "b")
    sim.run()
    assert fired == ["a"]
    sim.run()
    assert fired == ["a", "b"]


def test_peek_next_time_skips_cancelled():
    sim = Simulator()
    event = sim.schedule(5, lambda: None)
    sim.schedule(9, lambda: None)
    event.cancel()
    assert sim.peek_next_time() == 9


def test_pending_count():
    sim = Simulator()
    keep = sim.schedule(5, lambda: None)
    drop = sim.schedule(6, lambda: None)
    drop.cancel()
    assert sim.pending_count() == 1
    assert keep.time == 5


def test_events_executed_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(i, lambda: None)
    sim.run()
    assert sim.events_executed == 5


def test_args_passed_through():
    sim = Simulator()
    seen = []
    sim.schedule(1, lambda a, b: seen.append((a, b)), 1, "two")
    sim.run()
    assert seen == [(1, "two")]


class TestRunEdgeCases:
    def test_stop_then_rerun_resumes_where_it_left_off(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, fired.append, "a")
        sim.schedule(20, sim.stop)
        sim.schedule(30, fired.append, "b")
        sim.schedule(40, fired.append, "c")
        assert sim.run(until=100) == 20  # stopped mid-window, clock NOT advanced
        assert fired == ["a"]
        assert sim.run(until=100) == 100  # resumes, drains, advances to window edge
        assert fired == ["a", "b", "c"]

    def test_stop_then_rerun_without_until_drains(self):
        sim = Simulator()
        fired = []
        sim.schedule(1, sim.stop)
        sim.schedule(2, fired.append, "late")
        sim.run()
        assert fired == []
        sim.run()
        assert fired == ["late"]
        assert sim.now == 2

    def test_until_before_next_event_advances_clock_exactly(self):
        sim = Simulator()
        fired = []
        sim.schedule(100, fired.append, "later")
        assert sim.run(until=40) == 40
        assert sim.now == 40
        assert fired == []
        # The pending event is untouched and fires on the next window.
        assert sim.run(until=100) == 100
        assert fired == ["later"]

    def test_until_with_empty_heap_advances_clock(self):
        sim = Simulator()
        assert sim.run(until=70) == 70
        assert sim.now == 70

    def test_peek_next_time_drains_leading_cancelled(self):
        sim = Simulator()
        dead = [sim.schedule(5 + i, lambda: None) for i in range(3)]
        sim.schedule(50, lambda: None)
        for event in dead:
            event.cancel()
        assert sim.heap_size() == 4
        assert sim.peek_next_time() == 50
        # Drained, not just skipped: the cancelled entries left the heap.
        assert sim.heap_size() == 1
        assert sim.cancelled_pops == 3

    def test_peek_next_time_empty_after_draining(self):
        sim = Simulator()
        event = sim.schedule(5, lambda: None)
        event.cancel()
        assert sim.peek_next_time() is None
        assert sim.heap_size() == 0


class TestHeapCompaction:
    def test_cancel_heavy_workload_compacts(self):
        sim = Simulator()
        events = [sim.schedule(1_000 + i, lambda: None) for i in range(1_000)]
        for event in events[:900]:
            event.cancel()
        assert sim.compactions >= 1
        assert sim.compacted_events >= 800
        # Dead entries are gone; live ones still fire.
        assert sim.heap_size() < 200
        assert sim.pending_count() == 100
        sim.run()
        assert sim.events_executed == 100

    def test_compaction_preserves_order(self):
        sim = Simulator()
        fired = []
        keep = []
        for i in range(200):
            keep.append(sim.schedule(10 + i, fired.append, i))
            sim.schedule(5_000, lambda: None).cancel()
        for i in range(0, 200, 2):  # cancel interleaved survivors too
            keep[i].cancel()
        sim.run()
        assert fired == list(range(1, 200, 2))

    def test_small_heaps_never_compact(self):
        sim = Simulator()
        for _ in range(Simulator.COMPACT_MIN_SIZE // 2):
            sim.schedule(10, lambda: None).cancel()
        assert sim.compactions == 0

    def test_cancel_after_fire_does_not_corrupt_accounting(self):
        sim = Simulator()
        event = sim.schedule(1, lambda: None)
        sim.run()
        event.cancel()  # already fired; counter overcount is tolerated...
        live = [sim.schedule(10 + i, lambda: None) for i in range(100)]
        for entry in live[:80]:
            entry.cancel()
        # ...because compaction re-derives the truth.
        assert sim.pending_count() == 20
        sim.run()
        assert sim.events_executed == 21

    def test_cancelled_pops_counted_during_run(self):
        sim = Simulator()
        # Cancelled events at the heap top are lazily popped by run().
        dead = [sim.schedule(5, lambda: None) for _ in range(10)]
        sim.schedule(50, lambda: None)
        for event in dead:
            event.cancel()
        sim.run()
        assert sim.cancelled_pops == 10
        assert sim.events_executed == 1
