"""Tests for the discrete-event kernel."""

import pytest

from repro.sim import SimulationError, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(30, fired.append, "c")
    sim.schedule(10, fired.append, "a")
    sim.schedule(20, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 30


def test_ties_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for tag in ("first", "second", "third"):
        sim.schedule(5, fired.append, tag)
    sim.run()
    assert fired == ["first", "second", "third"]


def test_event_scheduled_during_run_executes():
    sim = Simulator()
    fired = []

    def outer():
        fired.append("outer")
        sim.schedule(7, fired.append, "inner")

    sim.schedule(3, outer)
    sim.run()
    assert fired == ["outer", "inner"]
    assert sim.now == 10


def test_schedule_at_current_time_during_event_runs_after_ties():
    sim = Simulator()
    fired = []

    def outer():
        fired.append("outer")
        sim.call_now(fired.append, "nested")

    sim.schedule(5, outer)
    sim.schedule(5, fired.append, "peer")
    sim.run()
    assert fired == ["outer", "peer", "nested"]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(10, fired.append, "x")
    sim.schedule(5, event.cancel)
    sim.run()
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(10, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()
    assert sim.events_executed == 0


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(10, fired.append, "early")
    sim.schedule(100, fired.append, "late")
    sim.run(until=50)
    assert fired == ["early"]
    assert sim.now == 50  # clock advanced to the window edge


def test_run_until_can_be_resumed():
    sim = Simulator()
    fired = []
    sim.schedule(10, fired.append, "a")
    sim.schedule(100, fired.append, "b")
    sim.run(until=50)
    sim.run(until=200)
    assert fired == ["a", "b"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_scheduling_in_past_rejected():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5, lambda: None)


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.schedule(1, fired.append, "a")
    sim.schedule(2, sim.stop)
    sim.schedule(3, fired.append, "b")
    sim.run()
    assert fired == ["a"]
    sim.run()
    assert fired == ["a", "b"]


def test_peek_next_time_skips_cancelled():
    sim = Simulator()
    event = sim.schedule(5, lambda: None)
    sim.schedule(9, lambda: None)
    event.cancel()
    assert sim.peek_next_time() == 9


def test_pending_count():
    sim = Simulator()
    keep = sim.schedule(5, lambda: None)
    drop = sim.schedule(6, lambda: None)
    drop.cancel()
    assert sim.pending_count() == 1
    assert keep.time == 5


def test_events_executed_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(i, lambda: None)
    sim.run()
    assert sim.events_executed == 5


def test_args_passed_through():
    sim = Simulator()
    seen = []
    sim.schedule(1, lambda a, b: seen.append((a, b)), 1, "two")
    sim.run()
    assert seen == [(1, "two")]
