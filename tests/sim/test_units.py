"""Tests for unit helpers."""

import pytest

from repro.sim import units


def test_time_constants():
    assert units.US == 1_000
    assert units.MS == 1_000_000
    assert units.SEC == 1_000_000_000


def test_time_constructors_round_trip():
    assert units.us(86) == 86_000
    assert units.ms(1.5) == 1_500_000
    assert units.sec(0.25) == 250_000_000
    assert units.ns_to_us(units.us(42)) == 42.0
    assert units.ns_to_ms(units.ms(10)) == 10.0
    assert units.ns_to_sec(units.sec(2)) == 2.0


def test_transmission_delay_10gbps():
    # 1250 bytes = 10_000 bits at 10 Gb/s -> 1 us.
    assert units.transmission_delay_ns(1250, units.gbps(10)) == 1000


def test_transmission_delay_minimum_one_ns():
    assert units.transmission_delay_ns(1, units.gbps(100)) >= 1


def test_transmission_delay_empty():
    assert units.transmission_delay_ns(0, units.gbps(10)) == 0


def test_cycles_to_ns_at_1ghz():
    assert units.cycles_to_ns(1000, units.ghz(1)) == 1000


def test_cycles_to_ns_minimum_one():
    assert units.cycles_to_ns(1, units.ghz(100)) == 1
    assert units.cycles_to_ns(0, units.ghz(1)) == 0


def test_ns_to_cycles_inverse():
    freq = units.ghz(3.1)
    cycles = 12_345.0
    ns = units.cycles_to_ns(cycles, freq)
    assert units.ns_to_cycles(ns, freq) == pytest.approx(cycles, rel=1e-3)


def test_rate_helpers():
    assert units.gbps(10) == 10e9
    assert units.mbps(5) == 5e6
    assert units.ghz(3.1) == pytest.approx(3.1e9)
    assert units.mhz(800) == pytest.approx(0.8e9)
