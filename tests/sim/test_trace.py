"""Tests for trace channels."""

import pytest

from repro.sim import NullTraceRecorder, TraceRecorder
from repro.sim.trace import CounterChannel, EventChannel


class TestEventChannel:
    def test_value_at_steps(self):
        ch = EventChannel("f")
        ch.record(0, 0.8)
        ch.record(100, 3.1)
        assert ch.value_at(0) == 0.8
        assert ch.value_at(99) == 0.8
        assert ch.value_at(100) == 3.1
        assert ch.value_at(500) == 3.1

    def test_value_before_first_sample_is_default(self):
        ch = EventChannel("f")
        ch.record(50, 1.0)
        assert ch.value_at(10, default=-1.0) == -1.0

    def test_times_must_be_monotone(self):
        ch = EventChannel("f")
        ch.record(10, 1.0)
        with pytest.raises(ValueError):
            ch.record(5, 2.0)

    def test_step_series_grid(self):
        ch = EventChannel("f")
        ch.record(0, 1.0)
        ch.record(150, 2.0)
        series = ch.step_series(0, 300, 100)
        assert series == [(0, 1.0), (100, 1.0), (200, 2.0), (300, 2.0)]

    def test_time_weighted_mean(self):
        ch = EventChannel("u")
        ch.record(0, 0.0)
        ch.record(500, 1.0)
        assert ch.time_weighted_mean(0, 1000) == pytest.approx(0.5)

    def test_time_weighted_mean_constant(self):
        ch = EventChannel("u")
        ch.record(0, 2.5)
        assert ch.time_weighted_mean(100, 400) == pytest.approx(2.5)


class TestCounterChannel:
    def test_total_accumulates(self):
        ch = CounterChannel("rx")
        ch.add(10, 100.0)
        ch.add(20, 50.0)
        assert ch.total == 150.0

    def test_binned_buckets(self):
        ch = CounterChannel("rx")
        ch.add(0, 1.0)
        ch.add(99, 2.0)
        ch.add(100, 4.0)
        ch.add(250, 8.0)
        assert ch.binned(0, 300, 100) == [3.0, 4.0, 8.0]

    def test_binned_excludes_outside_window(self):
        ch = CounterChannel("rx")
        ch.add(5, 1.0)
        ch.add(150, 2.0)
        assert ch.binned(100, 200, 100) == [2.0]

    def test_rate_series_scaling(self):
        ch = CounterChannel("rx")
        ch.add(0, 1000.0)  # 1000 bytes in a 1 ms bin -> 1e6 bytes/s
        series = ch.rate_series(0, 1_000_000, 1_000_000)
        assert series == [(0, pytest.approx(1e6))]

    def test_monotone_time_enforced(self):
        ch = CounterChannel("rx")
        ch.add(100, 1.0)
        with pytest.raises(ValueError):
            ch.add(99, 1.0)


class TestTraceRecorder:
    def test_channels_are_memoized(self):
        tr = TraceRecorder()
        assert tr.event_channel("a") is tr.event_channel("a")
        assert tr.counter_channel("b") is tr.counter_channel("b")

    def test_channel_names_sorted(self):
        tr = TraceRecorder()
        tr.event_channel("z")
        tr.counter_channel("a")
        assert tr.channel_names() == ["a", "z"]

    def test_has_channel(self):
        tr = TraceRecorder()
        tr.event_channel("x")
        assert tr.has_channel("x")
        assert not tr.has_channel("y")


class TestNullTraceRecorder:
    def test_event_records_are_dropped(self):
        tr = NullTraceRecorder()
        ch = tr.event_channel("f")
        ch.record(10, 1.0)
        assert len(ch) == 0

    def test_counter_total_still_tracked(self):
        tr = NullTraceRecorder()
        ch = tr.counter_channel("rx")
        ch.add(10, 5.0)
        ch.add(20, 7.0)
        assert len(ch) == 0
        assert ch.total == 12.0
