"""Tests for seeded RNG streams."""

from repro.sim import RngRegistry, derive_seed


def test_same_name_same_stream_object():
    reg = RngRegistry(7)
    assert reg.stream("client.0") is reg.stream("client.0")


def test_streams_reproducible_across_registries():
    a = RngRegistry(42).stream("disk")
    b = RngRegistry(42).stream("disk")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_are_independent():
    reg = RngRegistry(42)
    first = [reg.stream("a").random() for _ in range(5)]
    other = [reg.stream("b").random() for _ in range(5)]
    assert first != other


def test_different_root_seeds_differ():
    a = RngRegistry(1).stream("x").random()
    b = RngRegistry(2).stream("x").random()
    assert a != b


def test_adding_a_stream_does_not_perturb_existing_ones():
    reg1 = RngRegistry(9)
    s = reg1.stream("sizes")
    baseline = [s.random() for _ in range(3)]

    reg2 = RngRegistry(9)
    reg2.stream("other").random()  # extra stream created first
    s2 = reg2.stream("sizes")
    assert [s2.random() for _ in range(3)] == baseline


def test_derive_seed_stable_and_64bit():
    seed = derive_seed(123, "burst")
    assert seed == derive_seed(123, "burst")
    assert 0 <= seed < 2**64


def test_names_tracks_creation_order():
    reg = RngRegistry(0)
    reg.stream("z")
    reg.stream("a")
    assert reg.names() == ["z", "a"]
