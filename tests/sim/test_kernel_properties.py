"""Property-based tests for the event kernel.

Every ordering property is checked on both the timing-wheel ``Simulator``
and the ``HeapScheduler`` reference; the differential property at the
bottom drives randomized op sequences through both kernels at once and
asserts identical traces.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import HeapScheduler, Simulator

KERNELS = [Simulator, HeapScheduler]
kernel_param = pytest.mark.parametrize(
    "sim_cls", KERNELS, ids=["wheel", "heap"]
)


@kernel_param
@given(delays=st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_events_fire_in_nondecreasing_time_order(sim_cls, delays):
    sim = sim_cls()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@kernel_param
@given(delays=st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=100))
@settings(max_examples=50, deadline=None)
def test_equal_time_events_fire_in_submission_order(sim_cls, delays):
    sim = sim_cls()
    order = []
    common = max(delays)
    for i, _ in enumerate(delays):
        sim.schedule(common, order.append, i)
    sim.run()
    assert order == list(range(len(delays)))


@kernel_param
@given(
    delays=st.lists(st.integers(min_value=0, max_value=10**6), min_size=2, max_size=100),
    cancel_mask=st.lists(st.booleans(), min_size=2, max_size=100),
)
@settings(max_examples=50, deadline=None)
def test_cancelled_events_never_fire(sim_cls, delays, cancel_mask):
    sim = sim_cls()
    fired = []
    events = [sim.schedule(d, fired.append, i) for i, d in enumerate(delays)]
    expected = []
    for i, event in enumerate(events):
        if i < len(cancel_mask) and cancel_mask[i]:
            event.cancel()
        else:
            expected.append(i)
    sim.run()
    assert sorted(fired) == expected


@kernel_param
@given(
    delays=st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=60),
    split=st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=50, deadline=None)
def test_run_until_is_equivalent_to_one_run(sim_cls, delays, split):
    one = sim_cls()
    fired_one = []
    for delay in delays:
        one.schedule(delay, lambda d=delay: fired_one.append((one.now, d)))
    one.run()

    two = sim_cls()
    fired_two = []
    for delay in delays:
        two.schedule(delay, lambda d=delay: fired_two.append((two.now, d)))
    two.run(until=split)
    two.run()
    assert fired_one == fired_two


@kernel_param
@given(
    times=st.lists(
        st.integers(min_value=0, max_value=1 << 23), min_size=1, max_size=80
    )
)
@settings(max_examples=50, deadline=None)
def test_schedule_many_equals_loop_of_schedule_at(sim_cls, times):
    # Times straddle the wheel's overflow horizon (1 << 21) on purpose.
    bulk = sim_cls()
    fired_bulk = []
    bulk.schedule_many(times, lambda: fired_bulk.append(bulk.now))
    bulk.run()

    loop = sim_cls()
    fired_loop = []
    for t in times:
        loop.schedule_at(t, lambda: fired_loop.append(loop.now))
    loop.run()
    assert fired_bulk == fired_loop
    assert bulk.events_executed == loop.events_executed


# ---------------------------------------------------------------------------
# Differential fuzz: random op sequences, wheel vs heap, identical traces
# ---------------------------------------------------------------------------

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"), st.integers(0, 1 << 23)),
        st.tuples(st.just("many"), st.lists(st.integers(0, 1 << 22), max_size=8)),
        st.tuples(st.just("batch"), st.integers(0, 10**6), st.integers(1, 6)),
        st.tuples(st.just("cancel"), st.integers(0, 63)),
        st.tuples(st.just("reschedule"), st.integers(0, 63), st.integers(0, 10**6)),
        st.tuples(st.just("run_until"), st.integers(0, 1 << 23)),
    ),
    min_size=1,
    max_size=60,
)


def _apply_ops(sim_cls, ops):
    sim = sim_cls()
    trace = []
    handles = []

    def fire(tag):
        trace.append((sim.now, tag))

    for i, op in enumerate(ops):
        kind = op[0]
        if kind == "schedule":
            handles.append(sim.schedule(op[1], fire, i))
        elif kind == "many":
            sim.schedule_many([sim.now + t for t in op[1]], fire, i)
        elif kind == "batch":
            sim.schedule_batch(op[1], op[2], fire, i)
        elif kind == "cancel":
            if handles:
                handles[op[1] % len(handles)].cancel()
        elif kind == "reschedule":
            if handles:
                idx = op[1] % len(handles)
                handles[idx] = sim.reschedule(handles[idx], op[2])
        elif kind == "run_until":
            sim.run(until=max(sim.now, op[1]))
    sim.run()
    return trace, sim.now, sim.events_executed


@given(ops=_OPS)
@settings(max_examples=100, deadline=None)
def test_differential_wheel_matches_heap(ops):
    assert _apply_ops(Simulator, ops) == _apply_ops(HeapScheduler, ops)
