"""Property-based tests for the event kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator


@given(delays=st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_events_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@given(delays=st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=100))
@settings(max_examples=50, deadline=None)
def test_equal_time_events_fire_in_submission_order(delays):
    sim = Simulator()
    order = []
    common = max(delays)
    for i, _ in enumerate(delays):
        sim.schedule(common, order.append, i)
    sim.run()
    assert order == list(range(len(delays)))


@given(
    delays=st.lists(st.integers(min_value=0, max_value=10**6), min_size=2, max_size=100),
    cancel_mask=st.lists(st.booleans(), min_size=2, max_size=100),
)
@settings(max_examples=50, deadline=None)
def test_cancelled_events_never_fire(delays, cancel_mask):
    sim = Simulator()
    fired = []
    events = [sim.schedule(d, fired.append, i) for i, d in enumerate(delays)]
    expected = []
    for i, event in enumerate(events):
        if i < len(cancel_mask) and cancel_mask[i]:
            event.cancel()
        else:
            expected.append(i)
    sim.run()
    assert sorted(fired) == expected


@given(
    delays=st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=60),
    split=st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=50, deadline=None)
def test_run_until_is_equivalent_to_one_run(delays, split):
    one = Simulator()
    fired_one = []
    for delay in delays:
        one.schedule(delay, lambda d=delay: fired_one.append((one.now, d)))
    one.run()

    two = Simulator()
    fired_two = []
    for delay in delays:
        two.schedule(delay, lambda d=delay: fired_two.append((two.now, d)))
    two.run(until=split)
    two.run()
    assert fired_one == fired_two
