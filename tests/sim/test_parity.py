"""Differential parity: timing-wheel ``Simulator`` vs retained ``HeapScheduler``.

The wheel rewrite is only safe if it is *observationally identical* to the
binary heap it replaced: same dispatch order, same simulated clock, same
experiment results bit-for-bit.  These tests run the same workloads on both
kernels and compare (pattern: the serial-vs-pool parity tests in
``tests/harness/test_runner.py``).

Three layers:

- scripted synthetic workloads exercising every scheduling entrypoint
  (``schedule``/``schedule_at``/``call_now``/``schedule_many``/
  ``schedule_batch``/``reschedule``/``cancel``) → identical fired traces;
- the micro-bench scenarios (``event_kernel``/``cancel_churn``/...) via
  their ``sim_cls`` knob → identical event counts and final sim time;
- full cluster experiments (headline- and fig4-style configs, plus a
  cancellation-heavy moderation config) via ``Cluster(sim_factory=...)``
  → byte-identical ``ResultRecord`` JSON and hashes.
"""

import hashlib
import json

import pytest

from repro.apps.client import reset_request_ids
from repro.cluster.simulation import Cluster, ExperimentConfig
from repro.harness.hashing import config_hash
from repro.harness.record import ResultRecord
from repro.harness.suites import (
    burst_fanout,
    cancel_churn,
    chained_timers,
    event_kernel,
)
from repro.sim.kernel import HeapScheduler, Simulator
from repro.sim.units import MS

KERNELS = (Simulator, HeapScheduler)


# ---------------------------------------------------------------------------
# Layer 1: scripted synthetic workloads
# ---------------------------------------------------------------------------


def _mixed_script(sim):
    """Drive every scheduling entrypoint; return the fired trace."""
    trace = []

    def fire(tag):
        trace.append((sim.now, tag))

    def fire_shared():
        trace.append((sim.now, "shared"))

    # Same-timestamp collision across entrypoints: FIFO by seq.
    sim.schedule(100, fire, "a")
    sim.schedule_at(100, fire, "b")
    sim.schedule(100, fire, "c")
    # Bulk entrypoints interleaved with singles at overlapping times.
    sim.schedule_many([50, 100, 150, 150], fire_shared)
    sim.schedule_batch(150, 3, fire, "batch")
    # Cancellation: interior (lazy tombstone) and tail (eager unlink).
    interior = sim.schedule(200, fire, "never-interior")
    sim.schedule(200, fire, "d")
    tail = sim.schedule(200, fire, "never-tail")
    interior.cancel()
    tail.cancel()
    # Reschedule: pending move and (below, from inside a handler) re-arm
    # of an already-fired event.
    moved = sim.schedule(300, fire, "moved-early")
    moved = sim.reschedule(moved, 400)

    rearm_cell = [None]

    def rearming():
        trace.append((sim.now, "rearm"))
        if sim.now < 900:
            rearm_cell[0] = sim.reschedule(rearm_cell[0], 250)

    rearm_cell[0] = sim.schedule(250, rearming)

    def nested():
        trace.append((sim.now, "nested"))
        sim.call_now(fire, "now")
        sim.schedule(0, fire, "zero-delay")
        sim.schedule_batch(25, 2, fire, "nested-batch")

    sim.schedule(500, nested)
    # Far-future entries that land in the overflow tier on the wheel.
    sim.schedule(5_000_000, fire, "far")
    sim.schedule_many([5_000_000, 5_000_001], fire_shared)
    sim.run()
    return trace, sim.now, sim.events_executed


class TestScriptedParity:
    def test_mixed_workload_trace_identical(self):
        wheel_trace, wheel_now, wheel_n = _mixed_script(Simulator())
        heap_trace, heap_now, heap_n = _mixed_script(HeapScheduler())
        assert wheel_trace == heap_trace
        assert wheel_now == heap_now
        assert wheel_n == heap_n

    def test_stop_and_rerun_trace_identical(self):
        def script(sim):
            trace = []

            def fire(tag):
                trace.append((sim.now, tag))

            def stopper():
                trace.append((sim.now, "stop"))
                sim.stop()

            sim.schedule_batch(10, 4, fire, "pre")
            sim.schedule(10, stopper)
            sim.schedule_batch(10, 3, fire, "post")
            sim.schedule(20, fire, "later")
            sim.run()
            trace.append(("--resume--",))
            sim.run()
            return trace, sim.now

        assert script(Simulator()) == script(HeapScheduler())

    def test_run_until_boundary_identical(self):
        def script(sim):
            trace = []
            for t in (10, 20, 20, 30, 40):
                sim.schedule_at(t, trace.append, t)
            sim.run(until=25)
            mid = (list(trace), sim.now)
            sim.run()
            return mid, trace, sim.now

        assert script(Simulator()) == script(HeapScheduler())


# ---------------------------------------------------------------------------
# Layer 2: micro-bench scenarios via their sim_cls knob
# ---------------------------------------------------------------------------


SCENARIOS = [event_kernel, cancel_churn, chained_timers, burst_fanout]


class TestScenarioParity:
    @pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.__name__)
    def test_events_and_simtime_identical(self, scenario):
        wheel = scenario(None, sim_cls=Simulator)
        heap = scenario(None, sim_cls=HeapScheduler)
        assert wheel.events == heap.events
        assert wheel.sim_ns == heap.sim_ns
        # Cancellation *accounting* differs by design (the wheel unlinks
        # tails eagerly and reuses event objects on reschedule; the heap
        # tombstones everything), so only observable state must agree:
        # the number of live entries left behind.
        if "final_heap" in wheel.counters:
            assert wheel.counters["final_heap"] == heap.counters["final_heap"]


# ---------------------------------------------------------------------------
# Layer 3: full cluster experiments → bit-identical ResultRecords
# ---------------------------------------------------------------------------


def _record_json(config, sim_factory):
    reset_request_ids()
    result = Cluster(config, sim_factory=sim_factory).run()
    record = ResultRecord.from_result(result, config_hash(config), config.seed)
    return json.dumps(record.to_json_dict(), sort_keys=True)


def _parity_configs():
    quick = dict(warmup_ns=5 * MS, measure_ns=40 * MS, drain_ns=30 * MS, seed=2)
    return [
        # Headline-style: Apache under the paper's NCAP policy.
        pytest.param(
            ExperimentConfig(app="apache", policy="ncap.cons", target_rps=24_000.0, **quick),
            id="headline-apache-ncap",
        ),
        # Fig4-style: Apache under ond.idle (the correlation study config).
        pytest.param(
            ExperimentConfig(app="apache", policy="ond.idle", target_rps=24_000.0, **quick),
            id="fig4-apache-ond.idle",
        ),
        # Cancellation-heavy: memcached's small bursts + interrupt
        # moderation re-arm timers constantly (reschedule fast path).
        pytest.param(
            ExperimentConfig(app="memcached", policy="ncap.aggr", target_rps=60_000.0, **quick),
            id="cancel-churn-memcached-ncap",
        ),
    ]


class TestExperimentParity:
    @pytest.mark.parametrize("config", _parity_configs())
    def test_result_records_bit_identical(self, config):
        wheel = _record_json(config, None)
        heap = _record_json(config, HeapScheduler)
        assert wheel == heap
        assert (
            hashlib.sha256(wheel.encode()).hexdigest()
            == hashlib.sha256(heap.encode()).hexdigest()
        )

    def test_wheel_run_is_self_deterministic(self):
        config = ExperimentConfig(
            app="apache", policy="perf", target_rps=24_000.0,
            warmup_ns=5 * MS, measure_ns=40 * MS, drain_ns=30 * MS, seed=2,
        )
        assert _record_json(config, None) == _record_json(config, None)
