"""Tests for DecisionEngine threshold logic (paper Section 4.3)."""

import pytest

from repro.core import NCAPConfig
from repro.core.decision_engine import DecisionEngine
from repro.net.interrupts import ICR
from repro.sim import Simulator, TraceRecorder
from repro.sim.units import MS, US


class Harness:
    """Drives a DecisionEngine with scripted counters."""

    def __init__(self, config=None, enable_cit=True, cpu_at_max=False, trace=None):
        self.sim = Simulator()
        self.req = 0
        self.tx = 0
        self.posts = []
        self.last_interrupt = -(10**18)
        self.cpu_at_max = cpu_at_max
        self.config = config or NCAPConfig()
        self.engine = DecisionEngine(
            self.sim,
            self.config,
            req_count=lambda: self.req,
            tx_bytes=lambda: self.tx,
            post=lambda bits: self.posts.append((self.sim.now, bits)),
            last_interrupt_ns=lambda: self.last_interrupt,
            cpu_at_max=lambda: self.cpu_at_max,
            enable_cit=enable_cit,
            trace=trace,
        )
        self.engine.start()

    def advance(self, ns):
        self.sim.schedule(ns, lambda: None)
        self.sim.run()

    def tick_after(self, ns, new_requests=0, new_tx_bytes=0):
        self.advance(ns)
        self.req += new_requests
        self.tx += new_tx_bytes
        self.engine.tick()


class TestHighPath:
    def test_burst_above_rht_posts_it_high(self):
        h = Harness()
        # 10 requests in 100 us = 100 K RPS > RHT (35 K RPS).
        h.tick_after(100 * US, new_requests=10)
        assert h.posts and h.posts[0][1] == ICR.IT_HIGH | ICR.IT_RX
        assert h.engine.it_high_posts == 1
        assert h.engine.boost_active

    def test_rate_below_rht_no_post(self):
        h = Harness()
        # 2 requests in 100 us = 20 K RPS < RHT.
        h.tick_after(100 * US, new_requests=2)
        assert h.posts == []

    def test_no_it_high_when_cpu_already_max(self):
        h = Harness(cpu_at_max=True)
        h.tick_after(100 * US, new_requests=10)
        assert h.posts == []
        assert h.engine.boost_active  # still tracks the burst

    def test_repeated_high_windows_repost(self):
        h = Harness()
        h.tick_after(100 * US, new_requests=10)
        h.tick_after(100 * US, new_requests=10)
        assert h.engine.it_high_posts == 2

    def test_rate_computed_per_window(self):
        h = Harness()
        h.tick_after(100 * US, new_requests=10)
        assert h.engine.last_req_rate_rps == pytest.approx(100_000, rel=0.01)


class TestLowPath:
    def low_config(self):
        return NCAPConfig(fcons=3)

    def test_sustained_low_posts_it_low(self):
        h = Harness(self.low_config())
        h.tick_after(100 * US, new_requests=10)    # boost
        # Now quiet: low window must persist 1 ms before IT_LOW.
        for _ in range(12):
            h.tick_after(100 * US)
        lows = [p for p in h.posts if p[1] & ICR.IT_LOW]
        assert len(lows) >= 1
        first_low_t = lows[0][0]
        assert first_low_t >= 100 * US + 1 * MS

    def test_it_lows_stop_after_fcons(self):
        h = Harness(self.low_config())
        h.tick_after(100 * US, new_requests=10)
        for _ in range(100):
            h.tick_after(100 * US)
        lows = [p for p in h.posts if p[1] & ICR.IT_LOW]
        assert len(lows) == 3  # fcons
        assert not h.engine.boost_active

    def test_back_to_back_lows_paced_by_window(self):
        h = Harness(self.low_config())
        h.tick_after(100 * US, new_requests=10)
        for _ in range(40):
            h.tick_after(100 * US)
        lows = [t for t, bits in h.posts if bits & ICR.IT_LOW]
        gaps = [b - a for a, b in zip(lows, lows[1:])]
        assert all(g >= h.config.low_window_ns for g in gaps)

    def test_no_it_low_without_prior_burst(self):
        h = Harness()
        for _ in range(30):
            h.tick_after(100 * US)
        assert [p for p in h.posts if p[1] & ICR.IT_LOW] == []

    def test_tx_traffic_blocks_it_low(self):
        # Responses still streaming out: TxRate above TLT keeps F up.
        h = Harness(self.low_config())
        h.tick_after(100 * US, new_requests=10)
        for _ in range(30):
            # 5 Mb/s threshold; send ~80 Mb/s worth: 1000 bytes per 100 us.
            h.tick_after(100 * US, new_tx_bytes=1000)
        assert [p for p in h.posts if p[1] & ICR.IT_LOW] == []

    def test_moderate_rate_resets_low_window(self):
        h = Harness(self.low_config())
        h.tick_after(100 * US, new_requests=10)
        # Alternate quiet and moderate (between RLT and RHT) windows: the
        # sustained-low window never completes.
        for i in range(30):
            h.tick_after(100 * US, new_requests=2 if i % 2 else 0)
        assert [p for p in h.posts if p[1] & ICR.IT_LOW] == []


class TestCITPath:
    def test_request_after_long_idle_posts_immediate_rx(self):
        h = Harness()
        h.advance(5 * MS)  # long silence; last interrupt far in the past
        h.engine.on_req_count_change()
        assert h.posts == [(5 * MS, ICR.IT_RX)]
        assert h.engine.immediate_rx_posts == 1

    def test_recent_interrupt_suppresses_immediate_rx(self):
        h = Harness()
        h.advance(5 * MS)
        h.last_interrupt = h.sim.now - 100 * US  # < CIT (500 us)
        h.engine.on_req_count_change()
        assert h.posts == []

    def test_cit_disabled_for_software_variant(self):
        h = Harness(enable_cit=False)
        h.advance(5 * MS)
        h.engine.on_req_count_change()
        assert h.posts == []


class TestBookkeeping:
    def test_zero_period_tick_ignored(self):
        h = Harness()
        h.engine.tick()
        h.engine.tick()
        assert h.engine.ticks == 0

    def test_wake_times_recorded_in_trace(self):
        trace = TraceRecorder()
        h = Harness(trace=trace)
        h.tick_after(100 * US, new_requests=10)
        assert h.engine.wake_interrupt_times() == [100 * US]

    def test_tick_before_start_self_initializes(self):
        sim = Simulator()
        engine = DecisionEngine(
            sim, NCAPConfig(), lambda: 0, lambda: 0,
            post=lambda b: None, last_interrupt_ns=lambda: 0,
            cpu_at_max=lambda: False,
        )
        engine.tick()  # must not crash nor divide by zero
        assert engine.ticks == 0
