"""Tests for the software NCAP variant (ncap.sw)."""

from repro.core import NCAPConfig, NCAPDriverExtension, NCAPSoftware
from repro.cpu import ProcessorConfig
from repro.net import NIC, NICDriver, make_http_request
from repro.oskernel import (
    CpufreqDriver,
    CpuidleDriver,
    IRQController,
    MenuGovernor,
    NetStackCosts,
    Scheduler,
)
from repro.sim import Simulator, TraceRecorder
from repro.sim.units import MS


class Rig:
    def __init__(self, config=None, initial_pstate=14):
        self.sim = Simulator()
        self.trace = TraceRecorder()
        self.package = ProcessorConfig(
            n_cores=4, initial_pstate=initial_pstate
        ).build_package(self.sim)
        self.scheduler = Scheduler(self.sim, self.package)
        self.cpufreq = CpufreqDriver(self.sim, self.package)
        self.irq = IRQController(self.sim, self.package)
        self.cpuidle = CpuidleDriver(MenuGovernor(self.package.cstates))
        self.scheduler.idle_hook = self.cpuidle.on_core_idle
        self.nic = NIC(self.sim)
        self.driver = NICDriver(self.sim, self.nic, self.irq, NetStackCosts())
        self.driver.packet_sink = lambda f: None
        self.config = config or NCAPConfig(fcons=1)
        self.ext = NCAPDriverExtension(
            self.config, self.cpufreq, self.scheduler, cpuidle=self.cpuidle
        )
        self.sw = NCAPSoftware(
            self.sim, self.driver, self.irq, self.config, self.ext, trace=self.trace
        )
        self.sw.start()

    def send_burst(self, n, start_ns=0, gap_ns=1_000):
        for i in range(n):
            self.sim.schedule_at(
                start_ns + i * gap_ns,
                self.nic.receive_frame,
                make_http_request("client", "server", req_id=i),
            )


class TestSoftwareVariant:
    def test_burst_detected_and_boosted(self):
        rig = Rig(initial_pstate=14)
        rig.send_burst(60)
        # Check at 2.5 ms: the 1 ms timer has seen the burst and boosted;
        # the post-burst IT_LOW has not completed its window yet.
        rig.sim.run(until=int(2.5 * MS))
        assert rig.sw.engine.it_high_posts >= 1
        assert rig.package.pstate_index == 0

    def test_reaction_slower_than_hardware_tick(self):
        # Decisions only at the 1 ms timer: the boost cannot land before
        # the first timer expiry.
        rig = Rig(initial_pstate=14)
        rig.send_burst(60)
        rig.sim.run(until=5 * MS)
        wakes = rig.sw.engine.wake_interrupt_times()
        assert wakes and wakes[0] >= 1 * MS

    def test_per_packet_inspection_overhead_charged(self):
        config = NCAPConfig(fcons=1, sw_inspect_cycles_per_packet=50_000)
        rig = Rig(config)
        rig.send_burst(100)
        rig.sim.run(until=5 * MS)
        # 100 packets x 50 K cycles ~= 6.2 ms of core-0 time at 0.8 GHz:
        # the inspection overhead is visible as busy time.
        assert rig.package.cores[0].busy_ns_total() > 2 * MS

    def test_no_cit_immediate_wake(self):
        rig = Rig()
        rig.sim.schedule_at(
            5 * MS, rig.nic.receive_frame, make_http_request("c", "s")
        )
        rig.sim.run(until=7 * MS)
        assert rig.sw.engine.immediate_rx_posts == 0

    def test_timer_keeps_expiring(self):
        rig = Rig()
        rig.sim.run(until=5 * MS + MS // 2)
        assert rig.sw.timer_expirations == 5

    def test_stop_halts_timer(self):
        rig = Rig()
        rig.sim.run(until=2 * MS)
        rig.sw.stop()
        rig.sim.run(until=6 * MS)
        assert rig.sw.timer_expirations == 2

    def test_set_requests_not_counted(self):
        from repro.net import make_memcached_request

        rig = Rig()
        for i in range(10):
            rig.sim.schedule_at(
                i * 1000,
                rig.nic.receive_frame,
                make_memcached_request("c", "s", command="set"),
            )
        rig.sim.run(until=3 * MS)
        assert rig.sw.req_monitor.req_cnt == 0
