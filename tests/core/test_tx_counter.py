"""Tests for TxBytesCounter."""

from repro.core import TxBytesCounter
from repro.net import make_response


class TestTxBytesCounter:
    def test_counts_wire_bytes(self):
        counter = TxBytesCounter()
        frame = make_response("s", "c", payload_bytes=8_000)
        counter.observe(frame)
        assert counter.tx_bytes == frame.wire_bytes
        assert counter.frames_observed == 1

    def test_accumulates_without_context(self):
        # TxBytesCounter is deliberately context-free (counts any frame).
        counter = TxBytesCounter()
        a = make_response("s", "c", payload_bytes=100)
        b = make_response("s", "c", payload_bytes=50_000)
        counter.observe(a)
        counter.observe(b)
        assert counter.tx_bytes == a.wire_bytes + b.wire_bytes
        assert counter.frames_observed == 2
