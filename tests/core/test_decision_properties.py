"""Property-based tests for DecisionEngine invariants.

Whatever the traffic pattern, the engine must respect:

- IT_LOW is only posted while a boost episode is active, and at most
  FCONS times per episode;
- consecutive IT_LOWs are separated by at least the low window;
- IT_HIGH is never posted while the CPU reports it is already at max.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import NCAPConfig
from repro.core.decision_engine import DecisionEngine
from repro.net.interrupts import ICR
from repro.sim import Simulator
from repro.sim.units import US


traffic = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30),      # new requests per tick
        st.integers(min_value=0, max_value=200_000), # new tx bytes per tick
    ),
    min_size=5,
    max_size=120,
)


@given(pattern=traffic, fcons=st.integers(min_value=1, max_value=6))
@settings(max_examples=60, deadline=None)
def test_engine_invariants_under_arbitrary_traffic(pattern, fcons):
    sim = Simulator()
    config = NCAPConfig(fcons=fcons)
    state = {"req": 0, "tx": 0}
    posts = []
    engine = DecisionEngine(
        sim,
        config,
        req_count=lambda: state["req"],
        tx_bytes=lambda: state["tx"],
        post=lambda bits: posts.append((sim.now, bits)),
        last_interrupt_ns=lambda: -(10**18),
        cpu_at_max=lambda: False,
        enable_cit=False,
    )
    engine.start()

    def drive(step):
        if step >= len(pattern):
            return
        req, tx = pattern[step]
        state["req"] += req
        state["tx"] += tx
        engine.tick()
        sim.schedule(100 * US, drive, step + 1)

    sim.schedule(100 * US, drive, 0)
    sim.run()

    lows = [t for t, bits in posts if bits & ICR.IT_LOW]
    highs = [(t, bits) for t, bits in posts if bits & ICR.IT_HIGH]

    # Every IT_HIGH also carries IT_RX (Section 4.3).
    assert all(bits & ICR.IT_RX for _, bits in highs)

    # IT_LOWs come in episodes bounded by FCONS between IT_HIGH episodes.
    high_times = [t for t, _ in highs]
    boundaries = high_times + [float("inf")]
    episode_start = -1
    for boundary in boundaries:
        episode_lows = [t for t in lows if episode_start < t < boundary]
        assert len(episode_lows) <= fcons
        episode_start = boundary if boundary != float("inf") else episode_start

    # Back-to-back IT_LOWs are paced by the low window.
    for a, b in zip(lows, lows[1:]):
        assert b - a >= config.low_window_ns

    # No IT_LOW before any burst was ever seen.
    if lows and not highs:
        # boost_active can only have been set by a >RHT window.
        assert engine.it_high_posts == 0  # consistent bookkeeping


@given(pattern=traffic)
@settings(max_examples=40, deadline=None)
def test_no_it_high_when_cpu_already_at_max(pattern):
    sim = Simulator()
    state = {"req": 0, "tx": 0}
    posts = []
    engine = DecisionEngine(
        sim,
        NCAPConfig(),
        req_count=lambda: state["req"],
        tx_bytes=lambda: state["tx"],
        post=lambda bits: posts.append(bits),
        last_interrupt_ns=lambda: -(10**18),
        cpu_at_max=lambda: True,
        enable_cit=False,
    )
    engine.start()

    def drive(step):
        if step >= len(pattern):
            return
        req, tx = pattern[step]
        state["req"] += req
        state["tx"] += tx
        engine.tick()
        sim.schedule(100 * US, drive, step + 1)

    sim.schedule(100 * US, drive, 0)
    sim.run()
    assert not any(bits & ICR.IT_HIGH for bits in posts)
