"""Tests for the latency-slack controller extension."""

import pytest

from repro.cpu import ProcessorConfig
from repro.ext.slack import SlackController
from repro.oskernel import CpufreqDriver, IRQController
from repro.sim import Simulator
from repro.sim.units import MS


def make(sla_ms=10.0, target=0.65, guard=0.90, period_ms=10):
    sim = Simulator()
    package = ProcessorConfig(n_cores=2).build_package(sim)
    cpufreq = CpufreqDriver(sim, package)
    irq = IRQController(sim, package)
    controller = SlackController(
        sim, cpufreq, irq, sla_ns=round(sla_ms * MS),
        target=target, guard=guard, period_ns=period_ms * MS, min_samples=5,
    )
    controller.start()
    return sim, package, cpufreq, controller


def feed(controller, latency_ms, n=20):
    for _ in range(n):
        controller.observe(round(latency_ms * MS))


class TestControlLaw:
    def test_large_slack_deepens_cap(self):
        sim, package, cpufreq, controller = make()
        feed(controller, 2.0)  # p95 = 2 ms << 0.65 * 10 ms
        sim.run(until=11 * MS)
        assert cpufreq.cap_index == 1
        assert controller.steps_down == 1

    def test_cap_steps_accumulate(self):
        sim, package, cpufreq, controller = make()
        for window in range(4):
            feed(controller, 2.0)
            sim.run(until=(window + 1) * 10 * MS + MS)
        assert cpufreq.cap_index == 4

    def test_panic_lifts_cap(self):
        sim, package, cpufreq, controller = make()
        feed(controller, 2.0)
        sim.run(until=11 * MS)
        assert cpufreq.cap_index == 1
        feed(controller, 9.5)  # p95 above guard (9 ms)
        sim.run(until=21 * MS)
        assert cpufreq.cap_index == 0
        assert controller.panics == 1
        assert package.effective_target_index == 0

    def test_comfortable_zone_holds_cap(self):
        sim, package, cpufreq, controller = make()
        feed(controller, 8.0)  # between target (6.5) and guard (9.0)
        sim.run(until=11 * MS)
        assert cpufreq.cap_index == 0
        assert controller.steps_down == 0

    def test_too_few_samples_skipped(self):
        sim, package, cpufreq, controller = make()
        controller.observe(1 * MS)  # below min_samples
        sim.run(until=11 * MS)
        assert controller.last_p95_ns is None

    def test_cap_bounded_by_table(self):
        sim, package, cpufreq, controller = make()
        for window in range(30):
            feed(controller, 0.5)
            sim.run(until=(window + 1) * 10 * MS + MS)
        assert cpufreq.cap_index == package.pstates.max_index

    def test_validation(self):
        sim = Simulator()
        package = ProcessorConfig(n_cores=1).build_package(sim)
        cpufreq = CpufreqDriver(sim, package)
        irq = IRQController(sim, package)
        with pytest.raises(ValueError):
            SlackController(sim, cpufreq, irq, sla_ns=MS, target=0.9, guard=0.5)


class TestCpufreqCap:
    def test_cap_clamps_boosts(self):
        sim = Simulator()
        package = ProcessorConfig(n_cores=1, initial_pstate=14).build_package(sim)
        cpufreq = CpufreqDriver(sim, package)
        cpufreq.set_cap(5)
        cpufreq.boost_to_max()
        sim.run()
        assert package.pstate_index == 5

    def test_raising_cap_pushes_current_down(self):
        sim = Simulator()
        package = ProcessorConfig(n_cores=1, initial_pstate=0).build_package(sim)
        cpufreq = CpufreqDriver(sim, package)
        cpufreq.set_cap(7)
        sim.run()
        assert package.pstate_index == 7

    def test_deeper_requests_unaffected_by_cap(self):
        sim = Simulator()
        package = ProcessorConfig(n_cores=1).build_package(sim)
        cpufreq = CpufreqDriver(sim, package)
        cpufreq.set_cap(5)
        cpufreq.set_pstate(12)
        sim.run()
        assert package.pstate_index == 12

    def test_set_frequency_respects_cap(self):
        from repro.sim.units import ghz

        sim = Simulator()
        package = ProcessorConfig(n_cores=1, initial_pstate=14).build_package(sim)
        cpufreq = CpufreqDriver(sim, package)
        cpufreq.set_cap(5)
        cpufreq.set_frequency(ghz(3.1))
        sim.run()
        assert package.pstate_index == 5
