"""Tests for the Adrenaline-style baseline extension."""

import pytest

from repro.ext.adrenaline import AdrenalineConfig, AdrenalineServerNode
from repro.net import make_http_request, make_memcached_request
from repro.sim import RngRegistry, Simulator
from repro.sim.units import MS, US


class SinkPort:
    queue_depth = 0

    def send(self, frame):
        pass


def make_node(app="memcached", config=None):
    sim = Simulator()
    node = AdrenalineServerNode(
        sim, "server", app, RngRegistry(5), config=config or AdrenalineConfig()
    )
    node.attach_port(SinkPort())
    node.start()
    return sim, node


class TestBoosting:
    def test_query_boosts_target_core(self):
        sim, node = make_node()
        frame = make_memcached_request("client0", "server", req_id=1)
        target = node.nic.queue_for(frame).queue_id
        node.nic.receive_frame(frame)
        sim.run(until=MS)
        # Boosted on query start; by now the query completed and unboosted.
        assert node.boosts == 1
        assert node.unboosts == 1
        assert (
            node.processor.domains[target].pstate_index
            == node.config.idle_pstate
        )

    def test_boost_only_while_queries_outstanding(self):
        sim, node = make_node()
        frame = make_memcached_request("client0", "server", req_id=7)
        target = node.nic.queue_for(frame).queue_id
        node.nic.receive_frame(frame)
        # Shortly after softirq delivery the domain heads to P0.
        sim.run(until=80 * US)
        assert node.processor.domains[target].effective_target_index == 0

    def test_non_critical_requests_not_boosted(self):
        sim, node = make_node()
        node.nic.receive_frame(
            make_memcached_request("client0", "server", command="set", req_id=2)
        )
        sim.run(until=MS)
        assert node.boosts == 0

    def test_overlapping_queries_single_boost_cycle(self):
        sim, node = make_node()
        for i in range(10):
            sim.schedule_at(
                i * 1_000,
                node.nic.receive_frame,
                make_memcached_request("client0", "server", req_id=100 + i),
            )
        sim.run(until=3 * MS)
        # All ten on one flow/core; boost once, unboost once at the end.
        assert node.boosts == 1
        assert node.unboosts == 1
        assert node.app.responses_sent == 10

    def test_vr_switching_is_fast(self):
        # The on-chip VR model: a full-range transition takes ~the
        # configured switch time, not the 93 us of the shared regulator.
        sim, node = make_node()
        domain = node.processor.domains[0]
        timing = domain.dvfs_timing
        total = timing.total_latency_ns(domain.pstates.deepest, domain.pstates.p0)
        assert total <= 2 * node.config.vr_switch_ns

    def test_apache_variant_works(self):
        sim, node = make_node(app="apache")
        node.nic.receive_frame(make_http_request("client0", "server", req_id=1))
        sim.run(until=10 * MS)
        assert node.app.responses_sent == 1

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            AdrenalineServerNode(Simulator(), "s", "nginx", RngRegistry(1))

    def test_inspection_cost_charged(self):
        config = AdrenalineConfig(inspect_cycles_per_packet=50_000)
        sim, node = make_node(config=config)
        for driver in node.drivers:
            assert driver.extra_rx_cycles_per_packet == 50_000
