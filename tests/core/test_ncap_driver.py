"""Tests for the enhanced driver interrupt handler (Figure 5(d))."""

from repro.core import NCAPConfig, NCAPDriverExtension
from repro.cpu import CoreState, ProcessorConfig
from repro.net.interrupts import ICR
from repro.oskernel import (
    CpufreqDriver,
    CpuidleDriver,
    IRQController,
    MenuGovernor,
    OndemandGovernor,
    Scheduler,
)
from repro.sim import Simulator
from repro.sim.units import MS


def make(fcons=5, initial_pstate=14, with_ondemand=False):
    sim = Simulator()
    package = ProcessorConfig(n_cores=4, initial_pstate=initial_pstate).build_package(sim)
    scheduler = Scheduler(sim, package)
    cpufreq = CpufreqDriver(sim, package)
    irq = IRQController(sim, package)
    cpuidle = CpuidleDriver(MenuGovernor(package.cstates))
    scheduler.idle_hook = cpuidle.on_core_idle
    ondemand = OndemandGovernor(sim, cpufreq, irq) if with_ondemand else None
    ext = NCAPDriverExtension(
        NCAPConfig(fcons=fcons), cpufreq, scheduler, cpuidle=cpuidle, ondemand=ondemand
    )
    return sim, package, scheduler, cpufreq, cpuidle, ondemand, ext


class TestITHigh:
    def test_boosts_to_p0(self):
        sim, package, _, _, _, _, ext = make(initial_pstate=14)
        ext.on_icr(ICR.IT_HIGH | ICR.IT_RX)
        sim.run()
        assert package.pstate_index == 0

    def test_disables_menu_governor(self):
        sim, package, _, _, cpuidle, _, ext = make()
        ext.on_icr(ICR.IT_HIGH)
        assert not cpuidle.enabled

    def test_holds_ondemand_one_period(self):
        sim, package, _, _, _, ondemand, ext = make(with_ondemand=True)
        ondemand.start()
        ext.on_icr(ICR.IT_HIGH)
        # Idle system: ondemand would drop F, but it is held for a period,
        # and NCAP raised it to P0.
        sim.run(until=5 * MS)
        assert package.effective_target_index == 0

    def test_wakes_sleeping_cores(self):
        sim, package, scheduler, _, _, _, ext = make()
        for core in package.cores:
            core.enter_sleep(package.cstates.by_name("C6"))
        ext.on_icr(ICR.IT_HIGH)
        sim.run()
        assert all(c.state is not CoreState.SLEEP for c in package.cores)

    def test_wake_all_can_be_disabled(self):
        sim, package, scheduler, _, _, _, ext = make()
        ext.wake_all_on_high = False
        package.cores[1].enter_sleep(package.cstates.by_name("C6"))
        ext.on_icr(ICR.IT_HIGH)
        sim.run()
        assert package.cores[1].state is CoreState.SLEEP

    def test_counts(self):
        sim, package, _, _, _, _, ext = make()
        ext.on_icr(ICR.IT_HIGH)
        ext.on_icr(ICR.IT_RX)  # plain rx: not counted as high
        assert ext.high_handled == 1


class TestITLow:
    def test_aggressive_single_step_to_min(self):
        sim, package, _, _, _, _, ext = make(fcons=1, initial_pstate=14)
        ext.on_icr(ICR.IT_HIGH)
        sim.run()
        ext.on_icr(ICR.IT_LOW)
        sim.run()
        assert package.pstate_index == package.pstates.max_index

    def test_conservative_descends_over_fcons_steps(self):
        sim, package, _, _, _, _, ext = make(fcons=5, initial_pstate=14)
        ext.on_icr(ICR.IT_HIGH)
        sim.run()
        trail = []
        for _ in range(5):
            ext.on_icr(ICR.IT_LOW)
            sim.run()
            trail.append(package.pstate_index)
        assert trail[-1] == package.pstates.max_index
        assert trail == sorted(trail)
        assert trail[0] < package.pstates.max_index

    def test_first_it_low_reenables_menu(self):
        sim, package, _, _, cpuidle, _, ext = make()
        ext.on_icr(ICR.IT_HIGH)
        assert not cpuidle.enabled
        ext.on_icr(ICR.IT_LOW)
        assert cpuidle.enabled

    def test_extra_it_lows_safe_at_minimum(self):
        sim, package, _, _, _, _, ext = make(fcons=1, initial_pstate=14)
        ext.on_icr(ICR.IT_HIGH)
        sim.run()
        for _ in range(4):
            ext.on_icr(ICR.IT_LOW)
            sim.run()
        assert package.pstate_index == package.pstates.max_index
        assert ext.low_handled == 4

    def test_new_high_resets_step_ladder(self):
        sim, package, _, _, _, _, ext = make(fcons=5, initial_pstate=14)
        ext.on_icr(ICR.IT_HIGH)
        sim.run()
        ext.on_icr(ICR.IT_LOW)
        sim.run()
        first_step = package.pstate_index
        ext.on_icr(ICR.IT_HIGH)
        sim.run()
        assert package.pstate_index == 0
        ext.on_icr(ICR.IT_LOW)
        sim.run()
        assert package.pstate_index <= first_step  # ladder restarted
