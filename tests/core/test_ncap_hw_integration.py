"""Integration tests: enhanced NIC + enhanced driver on a live rx path.

These exercise the paper's headline mechanism end to end: a burst of GET
packets arriving at the NIC boosts the package to P0 and wakes sleeping
cores *before* the packets finish their DMA + SoftIRQ journey.
"""

import pytest

from repro.core import NCAPConfig, NCAPDriverExtension, NCAPHardware
from repro.cpu import ProcessorConfig
from repro.net import NIC, NICDriver, make_http_request
from repro.oskernel import (
    CpufreqDriver,
    CpuidleDriver,
    IRQController,
    MenuGovernor,
    NetStackCosts,
    Scheduler,
    SysFS,
)
from repro.sim import Simulator, TraceRecorder
from repro.sim.units import MS, US


class Rig:
    def __init__(self, config=None, initial_pstate=14, trace=None):
        self.sim = Simulator()
        self.trace = trace = trace or TraceRecorder()
        self.package = ProcessorConfig(
            n_cores=4, initial_pstate=initial_pstate
        ).build_package(self.sim, trace=trace)
        self.scheduler = Scheduler(self.sim, self.package)
        self.cpufreq = CpufreqDriver(self.sim, self.package)
        self.irq = IRQController(self.sim, self.package)
        self.cpuidle = CpuidleDriver(MenuGovernor(self.package.cstates))
        self.scheduler.idle_hook = self.cpuidle.on_core_idle
        self.nic = NIC(self.sim, trace=trace)
        self.driver = NICDriver(self.sim, self.nic, self.irq, NetStackCosts())
        self.config = config or NCAPConfig()
        self.hw = NCAPHardware(
            self.sim, self.nic, self.config,
            cpu_at_max=lambda: self.package.at_max_performance,
            trace=trace,
        )
        self.ext = NCAPDriverExtension(
            self.config, self.cpufreq, self.scheduler, cpuidle=self.cpuidle
        )
        self.driver.icr_hooks.append(self.ext.on_icr)
        self.delivered = []
        self.driver.packet_sink = lambda f: self.delivered.append((self.sim.now, f))
        self.hw.start()

    def send_burst(self, n, start_ns=0, gap_ns=1_000):
        for i in range(n):
            self.sim.schedule_at(
                start_ns + i * gap_ns,
                self.nic.receive_frame,
                make_http_request("client", "server", req_id=i),
            )


class TestProactiveBoost:
    def test_burst_boosts_before_delivery_completes(self):
        rig = Rig(initial_pstate=14)
        rig.send_burst(30)
        # Check at 500 us: the burst has been detected and the up-transition
        # (ramp + PLL, ~93 us) has completed; the post-burst IT_LOW step-down
        # happens later (after the 1 ms sustained-low window).
        rig.sim.run(until=500 * US)
        assert rig.package.pstate_index == 0
        assert rig.hw.engine.it_high_posts >= 1

    def test_boost_overlaps_delivery_latency(self):
        # The IT_HIGH (or immediate IT_RX) fires before the first packet's
        # SoftIRQ delivery: wake/boost overlaps DMA + moderation.
        rig = Rig(initial_pstate=14)
        rig.send_burst(30)
        rig.sim.run(until=2 * MS)
        wake_times = rig.hw.engine.wake_interrupt_times()
        first_delivery = rig.delivered[0][0]
        assert wake_times and wake_times[0] < first_delivery

    def test_lone_request_after_idle_triggers_cit_wake(self):
        rig = Rig()
        # Sleep all cores, then one request arrives after a long silence.
        for core in rig.package.cores:
            core.enter_sleep(rig.package.cstates.by_name("C6"))
        rig.sim.schedule_at(
            5 * MS, rig.nic.receive_frame, make_http_request("c", "s", req_id=1)
        )
        rig.sim.run(until=6 * MS)
        assert rig.hw.engine.immediate_rx_posts == 1
        # The wake interrupt preceded the packet's own moderated interrupt.
        assert rig.delivered
        assert rig.hw.engine.wake_interrupt_times()[0] == 5 * MS

    def test_non_critical_traffic_does_not_boost(self):
        rig = Rig(initial_pstate=14)
        # Heavy PUT traffic: high packet rate, zero template matches.
        for i in range(50):
            rig.sim.schedule_at(
                i * 1_000,
                rig.nic.receive_frame,
                make_http_request("c", "s", method="PUT", req_id=i),
            )
        rig.sim.run(until=2 * MS)
        assert rig.hw.engine.it_high_posts == 0
        assert rig.package.pstate_index == 14

    def test_it_low_lowers_after_quiet_period(self):
        rig = Rig(NCAPConfig(fcons=1), initial_pstate=14)
        rig.send_burst(30)
        rig.sim.run(until=10 * MS)  # burst, then >1 ms of silence
        assert rig.hw.engine.it_low_posts >= 1
        assert rig.package.pstate_index == rig.package.pstates.max_index

    def test_menu_disabled_during_burst_reenabled_after(self):
        rig = Rig(NCAPConfig(fcons=1), initial_pstate=14)
        rig.send_burst(30)
        rig.sim.run(until=500 * US)
        assert not rig.cpuidle.enabled
        rig.sim.run(until=10 * MS)
        assert rig.cpuidle.enabled


class TestSysfs:
    def test_registers_exposed_and_programmable(self):
        rig = Rig()
        fs = SysFS()
        rig.hw.register_sysfs(fs)
        assert fs.read("/sys/class/net/eth0/ncap/templates") == "GET,get"
        fs.write("/sys/class/net/eth0/ncap/templates", "HEAD,GET")
        assert rig.hw.req_monitor.matches(b"HEAD /x ")

    def test_counters_readable(self):
        rig = Rig()
        fs = SysFS()
        rig.hw.register_sysfs(fs)
        rig.send_burst(3)
        rig.sim.run(until=MS)
        assert int(fs.read("/sys/class/net/eth0/ncap/reqcnt")) == 3


class TestLifecycle:
    def test_stop_halts_ticks(self):
        rig = Rig()
        rig.sim.run(until=MS)
        ticks = rig.hw.engine.ticks
        rig.hw.stop()
        rig.sim.run(until=3 * MS)
        assert rig.hw.engine.ticks == ticks

    def test_start_idempotent(self):
        rig = Rig()
        rig.hw.start()
        rig.sim.run(until=MS)
        # One tick per MITT period, not two.
        assert rig.hw.engine.ticks == pytest.approx(
            MS // rig.config.mitt_period_ns, abs=1
        )
