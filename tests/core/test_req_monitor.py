"""Tests for ReqMonitor template matching (paper Section 4.1)."""

import pytest

from repro.core import ReqMonitor
from repro.net import make_http_request, make_memcached_request, make_response


class TestMatching:
    def setup_method(self):
        self.monitor = ReqMonitor((b"GET", b"get"))

    def test_http_get_counts(self):
        assert self.monitor.inspect(make_http_request("c", "s", method="GET"))
        assert self.monitor.req_cnt == 1

    def test_memcached_get_counts(self):
        assert self.monitor.inspect(make_memcached_request("c", "s", command="get"))
        assert self.monitor.req_cnt == 1

    def test_http_put_ignored(self):
        # PUT updates page content: explicitly not latency-critical (S4.1).
        assert not self.monitor.inspect(make_http_request("c", "s", method="PUT"))
        assert self.monitor.req_cnt == 0

    def test_memcached_set_ignored(self):
        assert not self.monitor.inspect(make_memcached_request("c", "s", command="set"))

    def test_bulk_response_traffic_ignored(self):
        # Off-line analytics style traffic: high bandwidth, no template match.
        assert not self.monitor.inspect(make_response("s", "c", payload_bytes=64_000))
        assert self.monitor.req_cnt == 0

    def test_counts_accumulate(self):
        for _ in range(5):
            self.monitor.inspect(make_http_request("c", "s"))
        assert self.monitor.req_cnt == 5
        assert self.monitor.packets_inspected == 5

    def test_count_listeners_fire_on_match_only(self):
        events = []
        self.monitor.count_listeners.append(lambda: events.append(1))
        self.monitor.inspect(make_http_request("c", "s", method="GET"))
        self.monitor.inspect(make_http_request("c", "s", method="PUT"))
        assert len(events) == 1


class TestProgramming:
    def test_reprogramming_changes_matches(self):
        monitor = ReqMonitor((b"GET",))
        assert not monitor.matches(b"HEAD /x ")
        monitor.program_templates([b"GET", b"HEAD"])
        assert monitor.matches(b"HEAD /x ")

    def test_templates_truncated_to_register_width(self):
        monitor = ReqMonitor((b"A" * 20,))
        assert len(monitor.templates[0]) == ReqMonitor.TEMPLATE_REGISTER_BYTES

    def test_empty_templates_rejected(self):
        with pytest.raises(ValueError):
            ReqMonitor(())
        with pytest.raises(ValueError):
            ReqMonitor((b"",))

    def test_two_byte_template_like_paper(self):
        # The paper compares "the first two bytes of the payload".
        monitor = ReqMonitor((b"GE",))
        assert monitor.inspect(make_http_request("c", "s", method="GET"))
