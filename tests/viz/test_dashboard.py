"""Dashboard tests: panel layout, HTML well-formedness, series parity."""

import json
from html.parser import HTMLParser

import pytest

from repro.cluster.simulation import ExperimentConfig, run_experiment
from repro.sim.units import MS
from repro.telemetry import Watchpoint, threshold_above
from repro.telemetry.recorder import SeriesData, TimeseriesBundle
from repro.viz import (
    dashboard_from_result,
    render_dashboard,
    standard_panels,
    write_dashboard,
)

VOID_TAGS = {"meta", "br", "hr", "img", "input", "link", "rect", "line",
             "path", "circle", "text"}


class _StructureParser(HTMLParser):
    """Counts dashboard structure and checks tag balance."""

    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.stack = []
        self.svg_panels = 0
        self.series_paths = 0
        self.tables = 0
        self.legends = 0
        self.fired_markers = 0
        self.errors = []

    def handle_starttag(self, tag, attrs):
        attrs = dict(attrs)
        cls = attrs.get("class", "")
        if tag == "svg" and "panel-svg" in cls:
            self.svg_panels += 1
        if tag == "path" and cls.startswith("line"):
            self.series_paths += 1
        if tag == "table":
            self.tables += 1
        if tag == "span" and cls == "legend":
            self.legends += 1
        if tag == "line" and cls == "fired":
            self.fired_markers += 1
        if tag not in VOID_TAGS:
            self.stack.append(tag)

    def handle_startendtag(self, tag, attrs):
        self.handle_starttag(tag, attrs)
        if tag not in VOID_TAGS:
            self.stack.pop()

    def handle_endtag(self, tag):
        if tag in VOID_TAGS:
            return
        if not self.stack or self.stack[-1] != tag:
            self.errors.append(f"unbalanced </{tag}> (stack: {self.stack[-3:]})")
        else:
            self.stack.pop()


def _parse(page: str) -> _StructureParser:
    parser = _StructureParser()
    parser.feed(page)
    assert not parser.errors, parser.errors
    assert not parser.stack, f"unclosed tags: {parser.stack}"
    return parser


def _synthetic_bundle() -> TimeseriesBundle:
    times = [i * MS for i in range(1, 21)]
    return TimeseriesBundle(
        interval_ns=MS,
        start_ns=0,
        end_ns=20 * MS,
        series=[
            SeriesData("cpu.freq_ghz", "gauge", 1, list(times),
                       [1.2 + 0.1 * (i % 4) for i in range(20)]),
            SeriesData("core0.cstate", "gauge", 1, list(times),
                       [float(i % 3) for i in range(20)]),
            SeriesData("cpu.util", "gauge", 1, list(times),
                       [0.05 * (i % 10) for i in range(20)]),
            SeriesData("power.watts", "gauge", 1, list(times),
                       [20.0 + i for i in range(20)]),
            SeriesData("nic.rx.bytes", "counter", 1, list(times),
                       [float(1500 * i) for i in range(20)]),
        ],
    )


class TestRenderDashboard:
    def test_structure_and_alignment(self):
        page = render_dashboard(_synthetic_bundle(), title="t")
        parser = _parse(page)
        assert parser.svg_panels >= 4
        assert parser.tables == parser.svg_panels  # a table view per panel
        # Aligned panels share one x-domain: every svg gets the same
        # embedded geometry.
        payload = json.loads(
            page.split('id="dash-data" type="application/json">')[1]
            .split("</script>")[0]
        )
        assert payload["t0"] < payload["t1"]
        assert {"Frequency", "C-state", "Utilization", "Power"} <= {
            p["title"] for p in payload["panels"]
        }

    def test_no_external_references(self):
        page = render_dashboard(_synthetic_bundle())
        for marker in ("http://", "https://", "src=", "href="):
            assert marker not in page

    def test_phase_shading(self):
        page = render_dashboard(
            _synthetic_bundle(),
            phases=[("warmup", 0, 5 * MS), ("measure", 5 * MS, 15 * MS),
                    ("drain", 15 * MS, 20 * MS)],
        )
        # warmup + drain washed on every panel; measure never is.
        parser = _parse(page)
        assert page.count('class="phase-wash"') == 2 * parser.svg_panels

    def test_empty_bundle_rejected(self):
        empty = TimeseriesBundle(interval_ns=MS, start_ns=0, end_ns=0)
        with pytest.raises(ValueError, match="no plottable series"):
            render_dashboard(empty)

    def test_counter_panels_render_rates(self):
        panels = standard_panels(_synthetic_bundle())
        network = next(p for p in panels if p.title == "Network")
        # 1500 B/ms = 12 Mb/s.
        assert network.series[0].points[0][1] == pytest.approx(12.0)


class TestFromExperiment:
    @pytest.fixture(scope="class")
    def run(self):
        config = ExperimentConfig(
            app="apache", policy="ond.idle", target_rps=24_000.0,
            warmup_ns=5 * MS, measure_ns=30 * MS, drain_ns=15 * MS,
            seed=4, collect_traces=True,
        )
        watchpoint = Watchpoint(
            "busy", "cpu.util", threshold_above(0.5), capture_ns=2 * MS
        )
        result = run_experiment(
            config, record_timeseries="coarse", watchpoints=[watchpoint]
        )
        return config, result

    def test_page_structure(self, run):
        config, result = run
        page = dashboard_from_result(result, config=config)
        parser = _parse(page)
        assert parser.svg_panels >= 4
        assert parser.series_paths >= 6
        assert parser.legends >= 2  # C-state cores, queues, network, ...
        assert "simulated time (ms)" in page

    def test_frequency_series_matches_trace_bin_for_bin(self, run):
        # Acceptance: the dashboard's frequency panel carries exactly the
        # trace channel's value at every recorder bin.
        config, result = run
        page = dashboard_from_result(result, config=config)
        payload = json.loads(
            page.split('id="dash-data" type="application/json">')[1]
            .split("</script>")[0]
        )
        freq_panel = next(p for p in payload["panels"] if p["title"] == "Frequency")
        series = freq_panel["series"][0]
        channel = result.trace.event_channel("server.cpu.freq_ghz")
        assert len(series["times"]) >= 30
        for t_ms, value in zip(series["times"], series["values"]):
            expected = channel.value_at(int(t_ms * 1e6), default=3.1)
            assert value == pytest.approx(expected, abs=5e-7)

    def test_watchpoint_markers_rendered(self, run):
        config, result = run
        if not result.timeseries.fired:
            pytest.skip("watchpoint did not trip in this run")
        page = dashboard_from_result(result, config=config)
        parser = _parse(page)
        assert parser.fired_markers >= parser.svg_panels  # marker per panel
        assert "watchpoint firing" in page

    def test_requires_timeseries(self):
        class Hollow:
            timeseries = None

        with pytest.raises(ValueError, match="record_timeseries"):
            dashboard_from_result(Hollow())

    def test_write_dashboard(self, run, tmp_path):
        config, result = run
        path = str(tmp_path / "out" / "dash.html")
        page = dashboard_from_result(result, config=config)
        assert write_dashboard(page, path) == path
        with open(path, "r", encoding="utf-8") as fh:
            assert fh.read() == page
