"""Frontier and trend page rendering: structure checks on the emitted
HTML, mirroring the dashboard test idiom (no browser, pure parsing)."""

import json
from html.parser import HTMLParser

from repro.experiments.pareto import (
    FrontierDataset,
    FrontierPoint,
    classify_dominance,
)
from repro.harness.history import flag_steps, load_bench_history
from repro.viz.frontier import policy_slots, render_frontier, render_trend_page

from tests.harness.test_history import make_payload, write_payload

VOID_TAGS = {"meta", "br", "hr", "img", "input", "link", "rect", "line",
             "path", "circle", "text", "polyline"}


class _StructureParser(HTMLParser):
    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.stack = []
        self.counts = {}
        self.attrs = []

    def handle_starttag(self, tag, attrs):
        self.counts[tag] = self.counts.get(tag, 0) + 1
        self.attrs.append((tag, dict(attrs)))
        if tag not in VOID_TAGS:
            self.stack.append(tag)

    def handle_startendtag(self, tag, attrs):
        self.counts[tag] = self.counts.get(tag, 0) + 1
        self.attrs.append((tag, dict(attrs)))

    def handle_endtag(self, tag):
        if tag in VOID_TAGS:
            return
        assert self.stack and self.stack[-1] == tag, (
            f"unbalanced </{tag}>, stack {self.stack[-5:]}"
        )
        self.stack.pop()


def parse(html_text):
    parser = _StructureParser()
    parser.feed(html_text)
    assert parser.stack == [], f"unclosed tags: {parser.stack}"
    return parser


def make_dataset(sla_violation=False):
    points = [
        FrontierPoint(
            app="apache", policy="ncap.cons", target_rps=12_000.0, seed=1,
            joules_per_request=0.001, p99_ns=4e6, p50_ns=2e6,
            energy_j=12.0, avg_power_w=15.0, achieved_rps=12_000.0,
            meets_sla=True, config_hash="aaa111",
        ),
        FrontierPoint(
            app="apache", policy="perf", target_rps=12_000.0, seed=1,
            joules_per_request=0.002, p99_ns=3e6, p50_ns=1.5e6,
            energy_j=24.0, avg_power_w=25.0, achieved_rps=12_000.0,
            meets_sla=True, config_hash="bbb222",
        ),
        FrontierPoint(
            app="apache", policy="ond", target_rps=24_000.0, seed=1,
            joules_per_request=0.003, p99_ns=9e6, p50_ns=4e6,
            energy_j=30.0, avg_power_w=22.0, achieved_rps=24_000.0,
            meets_sla=not sla_violation, config_hash="ccc333",
        ),
    ]
    classify_dominance(points)
    return FrontierDataset(name="smoke", points=points)


class TestFrontierPage:
    def test_structure_balanced_and_complete(self):
        page = render_frontier(make_dataset())
        parser = parse(page)
        assert parser.counts.get("svg", 0) >= 1
        assert parser.counts.get("polyline", 0) >= 1  # the frontier line
        assert parser.counts.get("table", 0) == 1
        assert parser.counts.get("circle", 0) >= 3
        assert "<!DOCTYPE html>" in page
        assert "Pareto frontier: smoke" in page

    def test_embedded_dataset_json_parses_back(self):
        ds = make_dataset()
        page = render_frontier(ds)
        marker = '<script id="frontier-data" type="application/json">'
        assert marker in page
        payload = page.split(marker, 1)[1].split("</script>", 1)[0]
        rebuilt = FrontierDataset.from_json_dict(json.loads(payload))
        assert rebuilt.to_json() == ds.to_json()

    def test_frontier_vs_dominated_markers(self):
        page = render_frontier(make_dataset())
        parser = parse(page)
        circle_classes = [
            a.get("class", "") for t, a in parser.attrs if t == "circle"
        ]
        assert any("dominated" in c for c in circle_classes)
        assert any("fill-s" in c for c in circle_classes)
        assert "dom. by" in page

    def test_sla_violation_ring(self):
        clean = render_frontier(make_dataset(sla_violation=False))
        violated = render_frontier(make_dataset(sla_violation=True))
        assert 'class="sla-violated"' not in clean
        assert 'class="sla-violated"' in violated
        assert "SLA VIOLATED" in violated

    def test_drill_down_links(self):
        links = {
            "aaa111": {"timeline": "details/aaa111.html",
                       "energy": "details/aaa111_energy.txt"},
        }
        page = render_frontier(make_dataset(), links=links)
        parser = parse(page)
        hrefs = [a["href"] for t, a in parser.attrs
                 if t == "a" and "href" in a]
        assert "details/aaa111.html" in hrefs
        assert "details/aaa111_energy.txt" in hrefs
        # points without links render a dash, not a dead anchor
        assert len(hrefs) == 2

    def test_no_external_assets(self):
        page = render_frontier(make_dataset())
        assert "http://" not in page and "https://" not in page
        assert "src=" not in page

    def test_empty_dataset_page(self):
        page = render_frontier(FrontierDataset(name="empty"))
        parse(page)
        assert "no points" in page

    def test_policy_slots_stable(self):
        slots = policy_slots(["perf", "ncap.cons", "ond"])
        assert slots == {"ncap.cons": 0, "ond": 1, "perf": 2}


class TestTrendPage:
    def _history(self, tmp_path, regress=False):
        paths = [
            write_payload(tmp_path / "v1.json",
                          make_payload(created=1000.0, wall_min=1.0)),
            write_payload(
                tmp_path / "v2.json",
                make_payload(created=2000.0,
                             wall_min=3.0 if regress else 1.0),
            ),
        ]
        return load_bench_history(paths)

    def test_sparkline_per_scenario(self, tmp_path):
        history = self._history(tmp_path)
        page = render_trend_page(history)
        parser = parse(page)
        assert parser.counts.get("figure", 0) == 1
        assert parser.counts.get("svg", 0) == 1
        assert "no step changes beyond tolerance" in page
        assert "micro/steady" in page

    def test_flagged_step_marked_and_listed(self, tmp_path):
        history = self._history(tmp_path, regress=True)
        flags = flag_steps(history)
        page = render_trend_page(history, flags=flags)
        parse(page)
        assert 'class="alert"' in page
        assert "regressed" in page
        assert "step changes" in page

    def test_no_external_assets(self, tmp_path):
        page = render_trend_page(self._history(tmp_path))
        assert "http://" not in page and "https://" not in page
        assert "href=" not in page and "src=" not in page
