"""Tests for the sysfs-like configuration surface."""

import pytest

from repro.oskernel import SysFS, SysfsError


class TestSysFS:
    def test_plain_value_roundtrip(self):
        fs = SysFS()
        fs.register("sys/class/net/eth0/mtu", initial="1500")
        assert fs.read("/sys/class/net/eth0/mtu") == "1500"
        fs.write("sys/class/net/eth0/mtu", "9000")
        assert fs.read("sys/class/net/eth0/mtu") == "9000"

    def test_unknown_path_raises(self):
        fs = SysFS()
        with pytest.raises(SysfsError):
            fs.read("/nope")
        with pytest.raises(SysfsError):
            fs.write("/nope", "1")

    def test_write_handler_invoked(self):
        fs = SysFS()
        seen = []
        fs.register("/dev/ncap/templates", write=seen.append)
        fs.write("/dev/ncap/templates", "GET,POST")
        assert seen == ["GET,POST"]
        assert fs.read("/dev/ncap/templates") == "GET,POST"

    def test_read_handler_invoked(self):
        fs = SysFS()
        fs.register("/stat/reqcnt", read=lambda: "42")
        assert fs.read("/stat/reqcnt") == "42"

    def test_exists(self):
        fs = SysFS()
        fs.register("/a/b", initial="x")
        assert fs.exists("/a/b")
        assert not fs.exists("/a/c")

    def test_ls_prefix(self):
        fs = SysFS()
        fs.register("/net/eth0/rht", initial="35000")
        fs.register("/net/eth0/rlt", initial="5000")
        fs.register("/cpu/governor", initial="ondemand")
        assert fs.ls("/net/eth0") == ["/net/eth0/rht", "/net/eth0/rlt"]
        assert len(fs.ls()) == 3

    def test_paths_normalized(self):
        fs = SysFS()
        fs.register("x/y", initial="1")
        assert fs.read("/x/y/") == "1"
