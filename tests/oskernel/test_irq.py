"""Tests for interrupt delivery."""

from repro.cpu import Job, ProcessorConfig
from repro.oskernel import IRQController
from repro.sim import Simulator
from repro.sim.units import US


def make(n_cores=2):
    sim = Simulator()
    package = ProcessorConfig(n_cores=n_cores).build_package(sim)
    return sim, package, IRQController(sim, package)


def cycles_us(us_amount):
    return 3.1e9 * us_amount * 1e-6


class TestHardIRQ:
    def test_handler_runs_after_handler_cycles(self):
        sim, package, irq = make()
        fired = []
        irq.raise_irq(lambda: fired.append(sim.now), cycles_us(2))
        sim.run()
        assert fired == [2 * US]

    def test_irq_preempts_running_job(self):
        sim, package, irq = make()
        order = []
        package.cores[0].dispatch(
            Job(cycles_us(100), on_complete=lambda: order.append(("app", sim.now)))
        )
        sim.schedule(
            10 * US,
            lambda: irq.raise_irq(lambda: order.append(("irq", sim.now)), cycles_us(2)),
        )
        sim.run()
        assert order[0] == ("irq", 12 * US)
        assert order[1] == ("app", 102 * US)

    def test_irq_wakes_sleeping_core(self):
        sim, package, irq = make()
        core = package.cores[0]
        c6 = package.cstates.by_name("C6")
        core.enter_sleep(c6)
        fired = []
        irq.raise_irq(lambda: fired.append(sim.now), cycles_us(2))
        sim.run()
        assert fired == [c6.exit_latency_ns + 2 * US]

    def test_irq_targets_default_core(self):
        sim, package, irq = make(n_cores=2)
        irq.raise_irq(lambda: None, cycles_us(50))
        assert package.cores[0].state.value == "run"
        assert package.cores[1].state.value == "idle"
        sim.run()

    def test_irq_core_override(self):
        sim, package, irq = make(n_cores=2)
        irq.raise_irq(lambda: None, cycles_us(50), core_id=1)
        assert package.cores[1].state.value == "run"
        sim.run()

    def test_interrupt_counter(self):
        sim, package, irq = make()
        irq.raise_irq(lambda: None, 1)
        irq.raise_irq(lambda: None, 1)
        assert irq.interrupts_delivered == 2
        sim.run()


class TestSoftIRQ:
    def test_softirqs_drain_fifo(self):
        sim, package, irq = make()
        order = []
        irq.raise_softirq(lambda: order.append("a"), cycles_us(1))
        irq.raise_softirq(lambda: order.append("b"), cycles_us(1))
        sim.run()
        assert order == ["a", "b"]

    def test_softirq_runs_before_preempted_app_job(self):
        sim, package, irq = make()
        order = []
        package.cores[0].dispatch(
            Job(cycles_us(100), on_complete=lambda: order.append("app"))
        )
        sim.schedule(
            1 * US, lambda: irq.raise_softirq(lambda: order.append("softirq"), cycles_us(5))
        )
        sim.run()
        assert order == ["softirq", "app"]
