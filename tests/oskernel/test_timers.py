"""Tests for periodic/one-shot kernel tasks."""

from repro.cpu import ProcessorConfig
from repro.oskernel import IRQController, OneShotKernelTask, PeriodicKernelTask
from repro.sim import Simulator
from repro.sim.units import MS

import pytest


def make():
    sim = Simulator()
    package = ProcessorConfig(n_cores=1).build_package(sim)
    return sim, package, IRQController(sim, package)


class TestPeriodicKernelTask:
    def test_fires_every_period(self):
        sim, package, irq = make()
        fired = []
        task = PeriodicKernelTask(sim, irq, MS, 0, lambda: fired.append(sim.now))
        task.start()
        sim.run(until=5 * MS + 1)
        assert len(fired) == 5

    def test_cycles_delay_body(self):
        sim, package, irq = make()
        fired = []
        cycles = 3.1e9 * 10e-6  # 10 us of kernel work
        task = PeriodicKernelTask(sim, irq, MS, cycles, lambda: fired.append(sim.now))
        task.start()
        sim.run(until=int(1.5 * MS))
        assert fired == [MS + 10_000]

    def test_stop_cancels_future_firings(self):
        sim, package, irq = make()
        fired = []
        task = PeriodicKernelTask(sim, irq, MS, 0, lambda: fired.append(sim.now))
        task.start()
        sim.schedule(int(2.5 * MS), task.stop)
        sim.run(until=10 * MS)
        assert len(fired) == 2

    def test_start_is_idempotent(self):
        sim, package, irq = make()
        fired = []
        task = PeriodicKernelTask(sim, irq, MS, 0, lambda: fired.append(sim.now))
        task.start()
        task.start()
        sim.run(until=MS)
        assert len(fired) == 1

    def test_initial_delay_override(self):
        sim, package, irq = make()
        fired = []
        task = PeriodicKernelTask(sim, irq, MS, 0, lambda: fired.append(sim.now))
        task.start(initial_delay_ns=0)
        sim.run(until=1)
        assert fired == [0]

    def test_consumes_cpu_time(self):
        sim, package, irq = make()
        cycles = 3.1e9 * 100e-6
        task = PeriodicKernelTask(sim, irq, MS, cycles, lambda: None)
        task.start()
        sim.run(until=10 * MS + MS // 2)  # slack for the 10th body to finish
        busy = package.cores[0].busy_ns_total()
        assert busy == pytest.approx(10 * 100_000, rel=0.01)

    def test_expiration_counter(self):
        sim, package, irq = make()
        task = PeriodicKernelTask(sim, irq, MS, 0, lambda: None)
        task.start()
        sim.run(until=3 * MS)
        assert task.expirations == 3

    def test_rearm_reuses_timer_event(self):
        # _expire re-arms via reschedule(): the just-fired event object is
        # reused, so a long-lived periodic task never grows the queue.
        sim, package, irq = make()
        task = PeriodicKernelTask(sim, irq, MS, 0, lambda: None)
        task.start()
        first = task._next
        sim.run(until=100 * MS + 1)
        assert task.expirations == 100
        assert task._next is first  # same Event object, re-armed in place
        task.stop()
        assert sim.pending_count() == 0

    def test_rejects_nonpositive_period(self):
        sim, package, irq = make()
        with pytest.raises(ValueError):
            PeriodicKernelTask(sim, irq, 0, 0, lambda: None)


class TestOneShotKernelTask:
    def test_fires_once(self):
        sim, package, irq = make()
        fired = []
        OneShotKernelTask(sim, irq, MS, 0, lambda: fired.append(sim.now))
        sim.run(until=10 * MS)
        assert fired == [MS]

    def test_cancel(self):
        sim, package, irq = make()
        fired = []
        task = OneShotKernelTask(sim, irq, MS, 0, lambda: fired.append(sim.now))
        sim.schedule(MS // 2, task.cancel)
        sim.run(until=10 * MS)
        assert fired == []
