"""Tests for the run queue / scheduler."""

from repro.cpu import CoreState, Job, ProcessorConfig
from repro.oskernel import Scheduler
from repro.sim import Simulator
from repro.sim.units import US


def make(n_cores=2):
    sim = Simulator()
    package = ProcessorConfig(n_cores=n_cores).build_package(sim)
    return sim, package, Scheduler(sim, package)


def work_us(us_amount, freq_ghz=3.1):
    return freq_ghz * 1e9 * us_amount * 1e-6


class TestDispatch:
    def test_job_runs_on_idle_core(self):
        sim, package, sched = make()
        done = []
        sched.enqueue(Job(work_us(10), on_complete=lambda: done.append(sim.now)))
        sim.run()
        assert done == [10 * US]

    def test_jobs_spread_across_idle_cores(self):
        sim, package, sched = make(n_cores=2)
        done = []
        sched.enqueue(Job(work_us(10), on_complete=lambda: done.append(sim.now)))
        sched.enqueue(Job(work_us(10), on_complete=lambda: done.append(sim.now)))
        sim.run()
        assert done == [10 * US, 10 * US]  # parallel, not serial

    def test_excess_jobs_queue_fifo(self):
        sim, package, sched = make(n_cores=1)
        order = []
        for name in ("a", "b", "c"):
            sched.enqueue(Job(work_us(10), on_complete=lambda n=name: order.append(n)))
        assert sched.queue_depth == 2
        sim.run()
        assert order == ["a", "b", "c"]
        assert sched.queue_depth == 0

    def test_sleeping_core_woken_for_work(self):
        sim, package, sched = make(n_cores=1)
        core = package.cores[0]
        c6 = package.cstates.by_name("C6")
        core.enter_sleep(c6)
        done = []
        sched.enqueue(Job(0, on_complete=lambda: done.append(sim.now)))
        sim.run()
        assert done == [c6.exit_latency_ns]

    def test_idle_core_preferred_over_sleeping(self):
        sim, package, sched = make(n_cores=2)
        package.cores[0].enter_sleep(package.cstates.by_name("C6"))
        done = []
        sched.enqueue(Job(0, on_complete=lambda: done.append(sim.now)))
        sim.run()
        assert done == [0]  # ran on the idle core, no exit latency
        assert package.cores[0].state is CoreState.SLEEP

    def test_core_hint_targets_specific_core(self):
        sim, package, sched = make(n_cores=2)
        sched.enqueue(Job(work_us(10)), core_hint=1)
        assert package.cores[1].state is CoreState.RUN
        assert package.cores[0].state is CoreState.IDLE
        sim.run()

    def test_core_hint_is_soft_affinity(self):
        # When the hinted core is busy, the job falls back to normal
        # selection (here: the idle core 1) instead of waiting behind it.
        sim, package, sched = make(n_cores=2)
        order = []
        sched.enqueue(Job(work_us(10), on_complete=lambda: order.append("first")), core_hint=0)
        sched.enqueue(Job(work_us(1), on_complete=lambda: order.append("second")), core_hint=0)
        sim.run()
        assert order == ["second", "first"]
        assert package.cores[1].busy_ns_total() > 0

    def test_core_hint_queues_when_all_cores_busy(self):
        sim, package, sched = make(n_cores=1)
        order = []
        sched.enqueue(Job(work_us(10), on_complete=lambda: order.append("first")), core_hint=0)
        sched.enqueue(Job(work_us(1), on_complete=lambda: order.append("second")), core_hint=0)
        assert sched.queue_depth == 1
        sim.run()
        assert order == ["first", "second"]

    def test_waking_core_with_backlog_not_double_loaded(self):
        sim, package, sched = make(n_cores=1)
        core = package.cores[0]
        core.enter_sleep(package.cstates.by_name("C6"))
        sched.enqueue(Job(work_us(50)))   # wakes the core, rides the wake
        sched.enqueue(Job(work_us(50)))   # must queue, not pile on pending
        assert sched.queue_depth == 1
        sim.run()


class TestIdleHook:
    def test_idle_hook_called_when_no_work(self):
        sim, package, sched = make(n_cores=1)
        idled = []
        sched.idle_hook = idled.append
        sched.enqueue(Job(work_us(5)))
        sim.run()
        assert idled == [package.cores[0]]

    def test_idle_hook_not_called_when_queue_nonempty(self):
        sim, package, sched = make(n_cores=1)
        idled = []
        sched.idle_hook = idled.append
        sched.enqueue(Job(work_us(5)))
        sched.enqueue(Job(work_us(5)))
        sim.run()
        assert len(idled) == 1  # only after the queue drained


class TestStats:
    def test_max_queue_depth_tracked(self):
        sim, package, sched = make(n_cores=1)
        for _ in range(4):
            sched.enqueue(Job(work_us(1)))
        assert sched.max_queue_depth == 3
        sim.run()

    def test_jobs_enqueued_counted(self):
        sim, package, sched = make(n_cores=2)
        for _ in range(5):
            sched.enqueue(Job(1))
        assert sched.jobs_enqueued == 5
        sim.run()

    def test_wake_all(self):
        sim, package, sched = make(n_cores=2)
        for core in package.cores:
            core.enter_sleep(package.cstates.by_name("C6"))
        sched.wake_all()
        sim.run()
        assert all(core.state is CoreState.IDLE for core in package.cores)


class TestTakeNext:
    def test_completion_chains_queued_job_without_idle_bounce(self):
        # One core, two jobs: the second must start at the exact instant
        # the first completes (the take_next fast path), with the
        # zero-length idle period still booked for accounting parity.
        sim, package, sched = make(n_cores=1)
        done = []
        sched.enqueue(Job(work_us(10), on_complete=lambda: done.append(sim.now)))
        sched.enqueue(Job(work_us(10), on_complete=lambda: done.append(sim.now)))
        sim.run()
        assert done == [10 * US, 20 * US]  # back to back, no gap

    def test_take_next_returns_none_on_empty_queue(self):
        sim, package, sched = make(n_cores=1)
        assert sched._take_next() is None

    def test_idle_hook_still_fires_when_queue_empty(self):
        sim, package, sched = make(n_cores=1)
        idled = []
        sched.idle_hook = lambda core: idled.append(core.core_id)
        sched.enqueue(Job(work_us(10)))
        sim.run()
        assert idled == [0]
