"""Tests for the cpufreq driver and P-state governors."""

import pytest

from repro.cpu import Job, ProcessorConfig
from repro.oskernel import (
    CpufreqDriver,
    IRQController,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
    UserspaceGovernor,
)
from repro.sim import Simulator
from repro.sim.units import MS, ghz


def make(initial_pstate=0):
    sim = Simulator()
    package = ProcessorConfig(n_cores=4, initial_pstate=initial_pstate).build_package(sim)
    driver = CpufreqDriver(sim, package)
    irq = IRQController(sim, package)
    return sim, package, driver, irq


class TestStaticGovernors:
    def test_performance_pins_p0(self):
        sim, package, driver, _ = make(initial_pstate=14)
        PerformanceGovernor(driver).start()
        sim.run()
        assert package.pstate_index == 0

    def test_powersave_pins_deepest(self):
        sim, package, driver, _ = make(initial_pstate=0)
        PowersaveGovernor(driver).start()
        sim.run()
        assert package.pstate_index == package.pstates.max_index

    def test_userspace_pins_requested(self):
        sim, package, driver, _ = make()
        governor = UserspaceGovernor(driver, initial_index=7)
        governor.start()
        sim.run()
        assert package.pstate_index == 7
        governor.set_speed(3)
        sim.run()
        assert package.pstate_index == 3


class TestDriver:
    def test_request_counting(self):
        sim, package, driver, _ = make()
        driver.set_pstate(3)
        driver.boost_to_max()
        assert driver.requests == 2

    def test_step_down_single_step_reaches_deepest(self):
        sim, package, driver, _ = make(initial_pstate=0)
        driver.step_down(steps_remaining=1)
        sim.run()
        assert package.pstate_index == package.pstates.max_index

    def test_step_down_five_steps_descends_gradually(self):
        sim, package, driver, _ = make(initial_pstate=0)
        indices = []
        for steps_left in range(5, 0, -1):
            driver.step_down(steps_remaining=steps_left)
            sim.run()
            indices.append(package.pstate_index)
        assert indices[-1] == package.pstates.max_index
        assert indices == sorted(indices)
        assert indices[0] < package.pstates.max_index  # first step partial

    def test_step_down_at_deepest_is_noop(self):
        sim, package, driver, _ = make(initial_pstate=14)
        driver.step_down(steps_remaining=3)
        sim.run()
        assert package.pstate_index == 14


class TestOndemand:
    def run_with_load(self, busy_fraction, period_ns=10 * MS, n_periods=4, **kw):
        """Drive a core with duty-cycled work and let ondemand react."""
        sim, package, driver, irq = make(initial_pstate=7)
        governor = OndemandGovernor(sim, driver, irq, period_ns=period_ns, **kw)
        governor.start()

        # Duty-cycled load on core 1 (core 0 is the governor's housekeeping
        # core): in every 1 ms slot, busy for busy_fraction of the slot.
        slot = MS

        def emit_load():
            cycles = package.frequency_hz * (slot * busy_fraction) / 1e9
            if cycles > 0:
                package.cores[1].dispatch(Job(cycles), preempt=True)
            sim.schedule(slot, emit_load)

        emit_load()
        # Half a period of slack so the Nth sample's kernel job completes.
        sim.run(until=n_periods * period_ns + period_ns // 2)
        return sim, package, governor

    def test_high_load_boosts_to_p0(self):
        _, package, governor = self.run_with_load(0.95)
        assert package.effective_target_index == 0
        assert governor.last_utilization > 0.8

    def test_idle_drops_to_deep_pstate(self):
        _, package, governor = self.run_with_load(0.0)
        assert package.effective_target_index == package.pstates.max_index

    def test_moderate_load_proportional_frequency(self):
        _, package, governor = self.run_with_load(0.4)
        index = package.effective_target_index
        assert 0 < index < package.pstates.max_index
        # target ~ 3.1 GHz * 0.4/0.8 = 1.55 GHz -> covering state
        assert package.pstates[index].freq_hz >= ghz(1.4)

    def test_governor_runs_every_period(self):
        sim, package, governor = self.run_with_load(0.2, n_periods=5)
        assert governor.samples == 5

    def test_hold_suppresses_decisions(self):
        sim, package, driver, irq = make(initial_pstate=0)
        governor = OndemandGovernor(sim, driver, irq)
        governor.start()
        governor.hold(100 * MS)
        sim.run(until=50 * MS)
        # Idle the whole time, but held: still at P0.
        assert package.pstate_index == 0

    def test_hold_expires(self):
        sim, package, driver, irq = make(initial_pstate=0)
        governor = OndemandGovernor(sim, driver, irq)
        governor.start()
        governor.hold()  # one period
        sim.run(until=25 * MS)
        assert package.effective_target_index == package.pstates.max_index

    def test_governor_overhead_consumes_cycles(self):
        sim, package, driver, irq = make()
        governor = OndemandGovernor(
            sim, driver, irq, period_ns=MS, overhead_cycles=31_000
        )
        governor.start()
        sim.run(until=100 * MS)
        # 100 invocations x 31K cycles at >=0.8 GHz: measurable busy time.
        assert package.cores[0].busy_ns_total() > 0

    def test_invalid_threshold_rejected(self):
        sim, package, driver, irq = make()
        with pytest.raises(ValueError):
            OndemandGovernor(sim, driver, irq, up_threshold=0.0)

    def test_stop_halts_sampling(self):
        sim, package, driver, irq = make()
        governor = OndemandGovernor(sim, driver, irq)
        governor.start()
        sim.run(until=15 * MS)
        governor.stop()
        samples = governor.samples
        sim.run(until=60 * MS)
        assert governor.samples == samples
