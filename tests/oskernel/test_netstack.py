"""Tests for network-stack cost accounting."""

from repro.oskernel import NetStackCosts


class TestNetStackCosts:
    def test_rx_batch_scales_with_packets(self):
        costs = NetStackCosts()
        one = costs.rx_batch_cycles(1)
        ten = costs.rx_batch_cycles(10)
        assert ten - one == 9 * costs.rx_per_packet_cycles

    def test_rx_empty_batch_is_poll_overhead_only(self):
        costs = NetStackCosts()
        assert costs.rx_batch_cycles(0) == costs.softirq_poll_cycles

    def test_tx_message_has_minimum_one_segment(self):
        costs = NetStackCosts()
        assert costs.tx_message_cycles(0) == costs.tx_message_cycles(1)

    def test_tx_message_scales_with_segments(self):
        costs = NetStackCosts()
        d = costs.tx_message_cycles(6) - costs.tx_message_cycles(1)
        assert d == 5 * costs.tx_per_segment_cycles

    def test_costs_are_immutable(self):
        costs = NetStackCosts()
        try:
            costs.hardirq_cycles = 0  # type: ignore[misc]
            mutated = True
        except Exception:
            mutated = False
        assert not mutated
