"""Cross-governor interaction tests: the places where NCAP, ondemand, the
menu governor, and DVFS hardware meet."""

import pytest

from repro.cpu import CoreState, Job, ProcessorConfig
from repro.oskernel import (
    CpufreqDriver,
    CpuidleDriver,
    IRQController,
    MenuGovernor,
    OndemandGovernor,
    Scheduler,
)
from repro.sim import Simulator
from repro.sim.units import MS, US


def make(initial_pstate=0):
    sim = Simulator()
    package = ProcessorConfig(n_cores=4, initial_pstate=initial_pstate).build_package(sim)
    scheduler = Scheduler(sim, package)
    cpufreq = CpufreqDriver(sim, package)
    irq = IRQController(sim, package)
    return sim, package, scheduler, cpufreq, irq


class TestOndemandVsBoost:
    def test_hold_prevents_fight_after_boost(self):
        # NCAP boosts to P0 then holds ondemand for one period: the idle
        # sample at the next tick must NOT drop the frequency.
        sim, package, scheduler, cpufreq, irq = make(initial_pstate=14)
        governor = OndemandGovernor(sim, cpufreq, irq, period_ns=10 * MS)
        governor.start()
        sim.schedule_at(5 * MS, cpufreq.boost_to_max)
        sim.schedule_at(5 * MS, governor.hold)
        sim.run(until=12 * MS)
        assert package.effective_target_index == 0
        # After the hold expires, idle sampling pulls it back down.
        sim.run(until=25 * MS)
        assert package.effective_target_index == package.pstates.max_index

    def test_without_hold_ondemand_undoes_the_boost(self):
        sim, package, scheduler, cpufreq, irq = make(initial_pstate=14)
        governor = OndemandGovernor(sim, cpufreq, irq, period_ns=10 * MS)
        governor.start()
        sim.schedule_at(5 * MS, cpufreq.boost_to_max)
        sim.run(until=12 * MS)
        assert package.effective_target_index == package.pstates.max_index


class TestMenuVsDisable:
    def test_disable_mid_sleep_leaves_core_asleep(self):
        # NCAP's IT_HIGH disables the menu governor; cores already in a
        # C-state stay there until work (or wake_all) arrives.
        sim, package, scheduler, cpufreq, irq = make()
        driver = CpuidleDriver(MenuGovernor(package.cstates))
        scheduler.idle_hook = driver.on_core_idle
        core = package.cores[0]
        core.enter_sleep(package.cstates.by_name("C6"))
        driver.disable()
        sim.run(until=5 * MS)
        assert core.state is CoreState.SLEEP

    def test_disable_stops_promotions_too(self):
        sim, package, scheduler, cpufreq, irq = make()
        driver = CpuidleDriver(MenuGovernor(package.cstates))
        scheduler.idle_hook = driver.on_core_idle
        core = package.cores[0]
        core.enter_sleep(package.cstates.by_name("C1"))
        driver._arm_promotion(core, core.idle_since, package.cstates.by_name("C1"))
        driver.disable()
        sim.run(until=5 * MS)
        assert core.current_cstate.name == "C1"  # never promoted

    def test_reenabled_governor_resumes_on_next_idle(self):
        sim, package, scheduler, cpufreq, irq = make()
        driver = CpuidleDriver(MenuGovernor(package.cstates))
        scheduler.idle_hook = driver.on_core_idle
        driver.disable()
        scheduler.enqueue(Job(3.1e9 * 5e-6))
        sim.run(until=MS)
        assert package.cores[0].state is CoreState.IDLE
        driver.enable()
        scheduler.enqueue(Job(3.1e9 * 5e-6))
        sim.run(until=2 * MS)
        assert package.cores[0].state is CoreState.SLEEP


class TestDVFSDuringSleep:
    def test_sleeping_core_wakes_at_new_frequency(self):
        sim, package, scheduler, cpufreq, irq = make(initial_pstate=0)
        core = package.cores[1]
        core.enter_sleep(package.cstates.by_name("C6"))
        package.set_pstate(14)
        sim.run()
        done = []
        cycles = 0.8e9 * 100e-6  # 100 us at the NEW frequency
        start = sim.now
        core.dispatch(Job(cycles, on_complete=lambda: done.append(sim.now)))
        sim.run()
        exit_ns = package.cstates.by_name("C6").exit_latency_ns
        assert done[0] - start == pytest.approx(exit_ns + 100 * US, abs=10)

    def test_boost_during_wake_applies_when_core_runs(self):
        # IT_HIGH lands while a core is mid-wake: the job it then runs
        # executes at (or heading to) P0.
        sim, package, scheduler, cpufreq, irq = make(initial_pstate=14)
        core = package.cores[0]
        core.enter_sleep(package.cstates.by_name("C6"))
        core.dispatch(Job(1000))  # triggers the wake
        cpufreq.boost_to_max()    # NCAP fires during the wake
        sim.run()
        assert package.pstate_index == 0


class TestUtilizationAttribution:
    def test_governor_sees_kernel_work_as_busy(self):
        # ondemand's own sampling work plus IRQ handlers count as busy
        # time, inflating utilization exactly as on real systems.
        sim, package, scheduler, cpufreq, irq = make(initial_pstate=7)
        governor = OndemandGovernor(
            sim, cpufreq, irq, period_ns=MS, overhead_cycles=200_000
        )
        governor.start()
        sim.run(until=20 * MS)
        # 200 K cycles/ms at ~2 GHz is ~10% utilization from overhead
        # alone, so the governor keeps itself above the floor frequency.
        assert governor.last_utilization > 0.04
