"""Tests for the cpuidle driver and menu/ladder governors."""

from repro.cpu import CoreState, Job, ProcessorConfig
from repro.oskernel import CpuidleDriver, LadderGovernor, MenuGovernor, Scheduler
from repro.sim import Simulator
from repro.sim.units import MS, US


def make(n_cores=1):
    sim = Simulator()
    package = ProcessorConfig(n_cores=n_cores).build_package(sim)
    scheduler = Scheduler(sim, package)
    return sim, package, scheduler


def work_us(us_amount):
    return 3.1e9 * us_amount * 1e-6


class TestMenuGovernor:
    def test_first_idle_goes_deep(self):
        # Empty history: optimistic (long) prediction -> C6, as observed in
        # the paper before a BW(Rx) surge.
        sim, package, sched = make()
        driver = CpuidleDriver(MenuGovernor(package.cstates))
        sched.idle_hook = driver.on_core_idle
        sched.enqueue(Job(work_us(5)))
        sim.run()
        core = package.cores[0]
        assert core.state is CoreState.SLEEP
        assert core.current_cstate.name == "C6"

    def test_short_idle_history_prevents_sleep(self):
        sim, package, sched = make()
        governor = MenuGovernor(package.cstates)
        driver = CpuidleDriver(governor)
        sched.idle_hook = driver.on_core_idle
        # Back-to-back jobs with ~4 us gaps: history converges to short
        # idles, for which no C-state's residency fits.
        t = 0
        for i in range(20):
            sim.schedule_at(t, sched.enqueue, Job(work_us(10)))
            t += 14 * US  # 10 us busy + 4 us idle
        sim.run(until=t)
        core = package.cores[0]
        assert core.state in (CoreState.IDLE, CoreState.RUN)
        assert governor.predict_idle_ns(core) < 10 * US

    def test_medium_idle_history_picks_middle_state(self):
        sim, package, sched = make()
        governor = MenuGovernor(package.cstates)
        driver = CpuidleDriver(governor)
        sched.idle_hook = driver.on_core_idle
        t = 0
        for i in range(20):
            sim.schedule_at(t, sched.enqueue, Job(work_us(10)))
            t += 110 * US  # 10 us busy + ~100 us idle (fits C3, not C6)
        sim.run(until=t - 90 * US)
        core = package.cores[0]
        assert core.state is CoreState.SLEEP
        assert core.current_cstate.name == "C3"

    def test_latency_limit_caps_depth(self):
        sim, package, sched = make()
        governor = MenuGovernor(package.cstates, latency_limit_ns=5 * US)
        driver = CpuidleDriver(governor)
        sched.idle_hook = driver.on_core_idle
        sched.enqueue(Job(work_us(5)))
        sim.run()
        assert package.cores[0].current_cstate.name == "C1"

    def test_typical_interval_rejects_outliers(self):
        samples = [30_000] * 7 + [5_000_000]
        assert MenuGovernor._typical_interval(samples) < 50_000

    def test_typical_interval_uniform(self):
        assert MenuGovernor._typical_interval([40_000] * 8) == 40_000

    def test_typical_interval_empty_after_rejection(self):
        assert MenuGovernor._typical_interval([1]) == 1


class TestLadderGovernor:
    def test_promotes_with_long_residencies(self):
        sim, package, sched = make()
        governor = LadderGovernor(package.cstates)
        driver = CpuidleDriver(governor)
        sched.idle_hook = driver.on_core_idle
        # Long idle gaps -> ladder should walk C1 -> C3 -> C6.
        t = 0
        names = []

        def snapshot():
            core = package.cores[0]
            if core.current_cstate is not None:
                names.append(core.current_cstate.name)

        for i in range(4):
            sim.schedule_at(t, sched.enqueue, Job(work_us(10)))
            sim.schedule_at(t + 500 * US, snapshot)
            t += MS
        sim.run(until=t)
        assert names[0] == "C1"
        assert names[-1] == "C6"

    def test_demotes_on_early_wake(self):
        sim, package, sched = make()
        governor = LadderGovernor(package.cstates)
        driver = CpuidleDriver(governor)
        sched.idle_hook = driver.on_core_idle
        # First a long idle to promote, then rapid-fire jobs to demote.
        sim.schedule_at(0, sched.enqueue, Job(work_us(1)))
        t = 2 * MS
        for i in range(6):
            sim.schedule_at(t, sched.enqueue, Job(work_us(1)))
            t += 3 * US
        sim.run(until=t + 2 * US)
        depth = governor._depth[0]
        assert depth == 0


class TestCpuidleDriver:
    def test_disable_stops_new_entries(self):
        sim, package, sched = make()
        driver = CpuidleDriver(MenuGovernor(package.cstates))
        sched.idle_hook = driver.on_core_idle
        driver.disable()
        sched.enqueue(Job(work_us(5)))
        sim.run()
        assert package.cores[0].state is CoreState.IDLE
        assert driver.suppressed >= 1

    def test_reenable_allows_entries(self):
        sim, package, sched = make()
        driver = CpuidleDriver(MenuGovernor(package.cstates))
        sched.idle_hook = driver.on_core_idle
        driver.disable()
        driver.enable()
        sched.enqueue(Job(work_us(5)))
        sim.run()
        assert package.cores[0].state is CoreState.SLEEP

    def test_entry_counter(self):
        sim, package, sched = make()
        driver = CpuidleDriver(MenuGovernor(package.cstates))
        sched.idle_hook = driver.on_core_idle
        sched.enqueue(Job(work_us(5)))
        sim.run()
        assert driver.entries == 1
