"""Pareto frontier experiment tests: dominance math, dataset canonical
JSON, and the acceptance-criteria serial==pooled byte identity."""

import json

import pytest

from repro.experiments import pareto
from repro.experiments.pareto import (
    PRESETS,
    FrontierDataset,
    FrontierPoint,
    classify_dominance,
    dataset_from_records,
    dominates,
    format_frontier_report,
    run,
    sweep_spec,
)
from repro.harness.cache import ResultCache
from repro.harness.runner import run_sweep
from repro.harness.settings import RunSettings


def point(policy="perf", rps=12_000.0, jpr=1.0, p99=1.0, **kwargs):
    defaults = dict(
        app="apache",
        policy=policy,
        target_rps=rps,
        seed=1,
        joules_per_request=jpr,
        p99_ns=p99,
        p50_ns=p99 / 2,
        energy_j=jpr * 1000,
        avg_power_w=20.0,
        achieved_rps=rps,
        meets_sla=True,
        config_hash=f"{policy}-{rps:g}",
    )
    defaults.update(kwargs)
    return FrontierPoint(**defaults)


class TestDominance:
    def test_strictly_better_dominates(self):
        assert dominates(point(jpr=1.0, p99=1.0), point(jpr=2.0, p99=2.0))
        assert not dominates(point(jpr=2.0, p99=2.0), point(jpr=1.0, p99=1.0))

    def test_tie_on_one_axis_still_dominates(self):
        assert dominates(point(jpr=1.0, p99=1.0), point(jpr=1.0, p99=2.0))
        assert dominates(point(jpr=1.0, p99=1.0), point(jpr=2.0, p99=1.0))

    def test_equal_points_do_not_dominate(self):
        assert not dominates(point(jpr=1.0, p99=1.0), point(jpr=1.0, p99=1.0))

    def test_tradeoff_points_incomparable(self):
        a, b = point(jpr=1.0, p99=2.0), point(jpr=2.0, p99=1.0)
        assert not dominates(a, b) and not dominates(b, a)

    def test_classify_marks_and_names_dominator(self):
        pts = [
            point("ncap.cons", jpr=1.0, p99=1.0),
            point("perf", jpr=2.0, p99=2.0),
            point("ond", jpr=0.5, p99=3.0),
        ]
        classify_dominance(pts)
        assert [p.dominated for p in pts] == [False, True, False]
        assert pts[1].dominated_by == pts[0].label
        assert pts[0].dominated_by == ""

    def test_classify_is_idempotent(self):
        pts = [point("a", jpr=1.0, p99=1.0), point("b", jpr=2.0, p99=2.0)]
        classify_dominance(pts)
        first = [(p.dominated, p.dominated_by) for p in pts]
        classify_dominance(pts)
        assert [(p.dominated, p.dominated_by) for p in pts] == first


class TestDataset:
    def _dataset(self):
        pts = [
            point("perf", jpr=2.0, p99=1.0),
            point("ncap.cons", jpr=1.0, p99=1.5),
            point("ond", jpr=2.5, p99=2.5),
        ]
        classify_dominance(pts)
        return FrontierDataset(name="smoke", points=pts)

    def test_frontier_sorted_by_jpr(self):
        front = self._dataset().frontier()
        assert [p.policy for p in front] == ["ncap.cons", "perf"]

    def test_json_roundtrip_byte_stable(self):
        ds = self._dataset()
        text = ds.to_json()
        rebuilt = FrontierDataset.from_json_dict(json.loads(text))
        assert rebuilt.to_json() == text
        assert rebuilt.policies() == ds.policies()
        assert rebuilt.loads() == ds.loads()

    def test_schema_gate(self):
        data = json.loads(self._dataset().to_json())
        data["schema"] = 999
        with pytest.raises(ValueError):
            FrontierDataset.from_json_dict(data)

    def test_canonical_json_has_no_whitespace_or_clock(self):
        text = self._dataset().to_json()
        assert ": " not in text and ", " not in text
        assert "time" not in json.loads(text)

    def test_report_lists_frontier_members(self):
        report = format_frontier_report(self._dataset())
        assert "frontier: 2/3 non-dominated" in report
        assert "dom. by" in report
        assert "mJ/req" in report


class TestPresets:
    def test_headline_covers_required_grid(self):
        preset = PRESETS["headline"]
        for policy in ("ncap.cons", "ond.idle", "perf"):
            assert policy in preset.policies
        assert len(preset.loads) >= 4

    def test_sweep_spec_expands_full_grid(self):
        preset = PRESETS["smoke"]
        specs = sweep_spec(preset, RunSettings.quick()).expand()
        assert len(specs) == len(preset.policies) * len(preset.loads)
        assert {s.policy_name for s in specs} == set(preset.policies)

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError):
            run("nope", settings=RunSettings.quick())


class TestEndToEnd:
    def test_serial_and_pooled_datasets_byte_identical(self, tmp_path):
        """The acceptance-criteria determinism gate, in-process."""
        settings = RunSettings.quick()
        spec = sweep_spec(PRESETS["smoke"], settings)
        serial = dataset_from_records(
            run_sweep(spec, jobs=1), name="smoke"
        )
        pooled = dataset_from_records(
            run_sweep(spec, jobs=2), name="smoke"
        )
        assert serial.to_json() == pooled.to_json()
        assert len(serial.points) == 4
        assert any(p.dominated for p in serial.points)
        assert len(serial.frontier()) >= 1
        # every point carries finite objectives
        for p in serial.points:
            assert p.joules_per_request > 0
            assert p.p99_ns > 0

    def test_run_uses_cache_on_second_pass(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        settings = RunSettings.quick()
        ds1, records1 = run("smoke", settings=settings, jobs=1, cache=cache)
        assert cache.stores == 4
        ds2, records2 = run("smoke", settings=settings, jobs=1, cache=cache)
        assert cache.hits == 4
        assert all(r.from_cache for r in records2)
        assert ds1.to_json() == ds2.to_json()
        assert pareto.FRONTIER_SCHEMA_VERSION == json.loads(ds1.to_json())[
            "schema"
        ]
