"""Fast tests of the per-figure experiment runners (abbreviated settings)."""

import pytest

from repro.experiments import (
    RunSettings,
    ablations,
    fig1_dvfs_timing,
    fig2_ondemand_period,
    fig4_correlation,
    fig7_latency_load,
    headline,
    policy_comparison,
)
from repro.sim.units import MS

TINY = RunSettings(warmup_ns=5 * MS, measure_ns=40 * MS, drain_ns=30 * MS, seed=2)


class TestFig1:
    def test_rows_and_report(self):
        rows = fig1_dvfs_timing.run()
        assert len(rows) == 6
        up = next(r for r in rows if (r.from_index, r.to_index) == (14, 0))
        assert up.ramp_us == pytest.approx(88.0)
        assert up.halt_us == pytest.approx(5.0)
        report = fig1_dvfs_timing.format_report(rows)
        assert "Figure 1" in report and "P14" in report

    def test_down_transitions_have_no_ramp(self):
        rows = fig1_dvfs_timing.run()
        down = next(r for r in rows if (r.from_index, r.to_index) == (0, 14))
        assert down.ramp_us == 0.0
        # The job is delayed by (at least) the halt, and then runs slower.
        assert down.measured_job_delay_us > 5.0


class TestFig2:
    def test_grid_and_best_period(self):
        cells = fig2_ondemand_period.run(
            periods_ms=(5, 10), loads=("low",), settings=TINY
        )
        assert len(cells) == 2
        best = fig2_ondemand_period.best_period_by_load(cells)
        assert best["low"] in (5, 10)
        report = fig2_ondemand_period.format_report(cells)
        assert "Figure 2" in report and "best period" in report


class TestFig4:
    def test_structure_and_correlation(self):
        result = fig4_correlation.run(settings=TINY)
        assert len(result.bw_rx) == len(result.bw_tx)
        assert max(v for _, v in result.bw_rx) == pytest.approx(1.0)
        assert -1.0 <= result.corr_rx_util <= 1.0
        assert result.cstate_entries  # menu slept between bursts
        report = fig4_correlation.format_report(result)
        assert "corr(BW(Rx) smoothed, U)" in report


class TestFig7:
    def test_knee_detection(self):
        result = fig7_latency_load.run(
            "apache", sweep_rps=(24_000, 80_000), settings=TINY
        )
        assert len(result.points) == 2
        assert result.knee_rps == 80_000  # saturated point doubles the p95
        report = fig7_latency_load.format_report(result)
        assert "inflexion" in report

    def test_no_knee_in_flat_sweep(self):
        result = fig7_latency_load.run(
            "apache", sweep_rps=(24_000, 30_000), settings=TINY
        )
        assert result.knee_rps is None
        assert "no inflexion" in fig7_latency_load.format_report(result)

    def test_find_knee_pure_logic(self):
        points = [
            fig7_latency_load.LoadPoint(10_000, 5.0, 2.0, 10_000),
            fig7_latency_load.LoadPoint(20_000, 6.0, 2.0, 20_000),
            fig7_latency_load.LoadPoint(30_000, 19.0, 2.0, 30_000),
        ]
        knee, sla = fig7_latency_load.find_knee(points)
        assert knee == 30_000 and sla == 19.0


class TestPolicyComparison:
    def test_two_policy_comparison(self):
        result = policy_comparison.run(
            "apache",
            loads=("low",),
            policies=("perf", "ncap.cons"),
            settings=TINY,
            snapshot_policies=("ncap.cons",),
            snapshot_window_ms=40,
        )
        assert len(result.rows) == 2
        assert result.energy_rel("perf", "low") == pytest.approx(1.0)
        assert result.energy_rel("ncap.cons", "low") < 1.0
        assert result.snapshots[0].policy == "ncap.cons"
        report = policy_comparison.format_report(result)
        assert "ncap.cons" in report

    def test_requires_perf_first(self):
        with pytest.raises(AssertionError):
            policy_comparison.run(
                "apache", loads=("low",), policies=("ond",),
                settings=TINY, snapshot_policies=(),
            )

    def test_row_lookup_unknown(self):
        result = policy_comparison.ComparisonResult(app="apache", rows=[])
        with pytest.raises(KeyError):
            result.row("perf", "low")


class TestHeadline:
    def _comparison(self):
        rows = [
            policy_comparison.PolicyRow("perf", "low", 0.2, 0.3, 0.35, 0.5, 1.00, True, 2.0, 10.0),
            policy_comparison.PolicyRow("ond", "low", 0.4, 0.6, 0.70, 0.9, 0.65, True, 3.0, 6.5),
            policy_comparison.PolicyRow("perf.idle", "low", 0.2, 0.3, 0.4, 0.6, 0.45, True, 2.1, 4.5),
            policy_comparison.PolicyRow("ond.idle", "low", 0.5, 0.8, 1.10, 1.4, 0.40, False, 3.2, 4.0),
            policy_comparison.PolicyRow("ncap.sw", "low", 0.3, 0.4, 0.5, 0.7, 0.70, True, 2.4, 7.0),
            policy_comparison.PolicyRow("ncap.cons", "low", 0.2, 0.3, 0.38, 0.55, 0.55, True, 2.1, 5.5),
            policy_comparison.PolicyRow("ncap.aggr", "low", 0.25, 0.35, 0.42, 0.6, 0.50, True, 2.2, 5.0),
        ]
        return policy_comparison.ComparisonResult(app="apache", rows=rows)

    def test_derive_picks_best_sla_ok_policies(self):
        rows = headline.derive([self._comparison()], loads=("low",))
        row = rows[0]
        assert row.best_ncap == "ncap.aggr"
        assert row.ncap_vs_perf_saving_pct == pytest.approx(50.0)
        # ond.idle violated SLA, so perf.idle (0.45) is the comparator.
        assert row.best_conventional == "perf.idle"
        assert row.ncap_vs_conventional_saving_pct == pytest.approx(
            (1 - 0.50 / 0.45) * 100
        )
        assert row.ncap_sw_vs_perf_saving_pct == pytest.approx(30.0)

    def test_report_renders(self):
        rows = headline.derive([self._comparison()], loads=("low",))
        text = headline.format_report(rows)
        assert "Headline" in text and "ncap.aggr" in text


class TestAblations:
    def test_fcons_sweep_runs(self):
        points = ablations.sweep_fcons(values=(1, 5), settings=TINY)
        assert {p.value for p in points} == {1, 5}
        text = ablations.format_report(points, "FCONS")
        assert "FCONS" in text

    def test_rht_extremes(self):
        points = ablations.sweep_rht(values_rps=(5_000, 500_000), settings=TINY)
        low, high = sorted(points, key=lambda p: p.value)
        assert low.it_high_posts >= high.it_high_posts
