"""Property-based tests on the power model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import PowerMode, PowerModel, PStateTable

voltages = st.floats(min_value=0.65, max_value=1.2, allow_nan=False)
freqs = st.floats(min_value=0.8e9, max_value=3.1e9, allow_nan=False)


@given(v=voltages, f=freqs)
@settings(max_examples=100, deadline=None)
def test_power_mode_ladder_monotone(v, f):
    model = PowerModel()
    run = model.core_power_w(PowerMode.RUN, v, f)
    idle = model.core_power_w(PowerMode.IDLE_POLL, v, f)
    stall = model.core_power_w(PowerMode.STALL, v, f)
    c1 = model.core_power_w(PowerMode.C1, v, f)
    c6 = model.core_power_w(PowerMode.C6, v, f)
    assert run > idle > stall >= c1 > c6 >= 0.0


@given(v=voltages, f=freqs)
@settings(max_examples=100, deadline=None)
def test_all_powers_finite_nonnegative(v, f):
    model = PowerModel()
    for mode in PowerMode:
        p = model.core_power_w(mode, v, f)
        assert p >= 0.0
        assert p < 1_000.0


def test_deeper_pstates_use_less_power_when_busy():
    model = PowerModel()
    table = PStateTable.linear()
    powers = [
        model.core_power_w(PowerMode.RUN, s.voltage, s.freq_hz) for s in table
    ]
    assert all(a > b for a, b in zip(powers, powers[1:]))


def test_deeper_pstates_use_less_energy_per_cycle():
    """Energy per cycle decreases with depth (crawling is cheaper per unit
    of work in a V^2*F model with these Table 1 anchors) — the physical
    reason NCAP's race-to-halt costs some energy versus DVFS crawling."""
    model = PowerModel()
    table = PStateTable.linear()
    energy_per_cycle = [
        model.core_power_w(PowerMode.RUN, s.voltage, s.freq_hz) / s.freq_hz
        for s in table
    ]
    assert all(a > b for a, b in zip(energy_per_cycle, energy_per_cycle[1:]))


@given(v=voltages)
@settings(max_examples=50, deadline=None)
def test_static_power_within_anchor_band(v):
    model = PowerModel()
    static = model.static_power_w(v)
    assert 1.92 - 1e-9 <= static <= 7.11 + 1e-9
