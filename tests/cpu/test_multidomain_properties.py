"""Property-based tests for per-core clock domains."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import Job, ProcessorConfig
from repro.cpu.multidomain import MultiDomainProcessor
from repro.sim import Simulator


@given(
    targets=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),   # domain
            st.integers(min_value=0, max_value=14),  # p-state
            st.integers(min_value=0, max_value=500_000),  # time
        ),
        max_size=12,
    )
)
@settings(max_examples=40, deadline=None)
def test_domains_settle_independently(targets):
    sim = Simulator()
    proc = MultiDomainProcessor(sim, ProcessorConfig(n_cores=4))
    last_target = {i: 0 for i in range(4)}
    by_time = sorted(targets, key=lambda t: t[2])
    for domain_id, index, t in by_time:
        sim.schedule_at(t, proc.domain_of(domain_id).set_pstate, index)
        last_target[domain_id] = index
    sim.run()
    for domain_id, expected in last_target.items():
        assert proc.domain_of(domain_id).pstate_index == expected


@given(
    work=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),
            st.floats(min_value=1_000, max_value=1e6, allow_nan=False),
        ),
        min_size=1,
        max_size=16,
    ),
    retune=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=0, max_value=14),
            st.integers(min_value=0, max_value=200_000),
        ),
        max_size=6,
    ),
)
@settings(max_examples=30, deadline=None)
def test_work_conserved_across_domains(work, retune):
    """Every job completes exactly once, whatever each domain's V/F does."""
    sim = Simulator()
    proc = MultiDomainProcessor(sim, ProcessorConfig(n_cores=4))
    done = []
    pending = {i: [] for i in range(4)}
    for core_id, cycles in work:
        pending[core_id].append(cycles)

    def submit(core_id):
        if not pending[core_id]:
            return
        cycles = pending[core_id].pop()
        proc.cores[core_id].dispatch(
            Job(cycles, on_complete=lambda c=core_id: (done.append(c), submit(c)))
        )

    for core_id in range(4):
        submit(core_id)
    for domain_id, index, t in retune:
        sim.schedule_at(t, proc.domain_of(domain_id).set_pstate, index)
    sim.run()
    assert len(done) == len(work)
