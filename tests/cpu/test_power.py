"""Tests for the power model calibration against Table 1 anchors."""

import pytest

from repro.cpu import PowerMode, PowerModel, PowerModelConfig
from repro.sim.units import ghz


class TestCalibration:
    def setup_method(self):
        self.model = PowerModel()

    def test_core_max_power_at_p0(self):
        # 20 W/core -> 80 W package at P0 fully busy (Table 1 upper bound).
        power = self.model.core_power_w(PowerMode.RUN, 1.2, ghz(3.1))
        assert power == pytest.approx(20.0, rel=1e-6)

    def test_package_min_power_near_12w(self):
        # 4 cores busy at the deepest P-state ~= 12 W (Table 1 lower bound).
        power = 4 * self.model.core_power_w(PowerMode.RUN, 0.65, ghz(0.8))
        assert 10.0 < power < 13.0

    def test_static_anchors(self):
        assert self.model.static_power_w(0.65) == pytest.approx(1.92)
        assert self.model.static_power_w(1.2) == pytest.approx(7.11)

    def test_static_interpolates_between_anchors(self):
        mid = self.model.static_power_w(0.925)
        assert 1.92 < mid < 7.11

    def test_c1_power_equals_static_at_current_v(self):
        for v in (0.65, 0.9, 1.2):
            assert self.model.core_power_w(PowerMode.C1, v, ghz(3.1)) == pytest.approx(
                self.model.static_power_w(v)
            )

    def test_c3_power_fixed(self):
        # 1.64 W at the 0.6 V retention rail regardless of domain V/F.
        assert self.model.core_power_w(PowerMode.C3, 1.2, ghz(3.1)) == pytest.approx(1.64)
        assert self.model.core_power_w(PowerMode.C3, 0.65, ghz(0.8)) == pytest.approx(1.64)

    def test_c6_power_zero(self):
        assert self.model.core_power_w(PowerMode.C6, 1.2, ghz(3.1)) == 0.0


class TestModeOrdering:
    """Deeper modes must never consume more than shallower ones."""

    def setup_method(self):
        self.model = PowerModel()

    @pytest.mark.parametrize("v,f", [(1.2, ghz(3.1)), (0.65, ghz(0.8)), (0.9, ghz(2.0))])
    def test_monotone_power_ladder(self, v, f):
        run = self.model.core_power_w(PowerMode.RUN, v, f)
        idle = self.model.core_power_w(PowerMode.IDLE_POLL, v, f)
        c1 = self.model.core_power_w(PowerMode.C1, v, f)
        c3 = self.model.core_power_w(PowerMode.C3, v, f)
        c6 = self.model.core_power_w(PowerMode.C6, v, f)
        assert run > idle > c1 >= c3 > c6 or (run > idle > c1 and c3 >= c6)

    def test_stall_cheaper_than_idle_poll(self):
        stall = self.model.core_power_w(PowerMode.STALL, 1.2, ghz(3.1))
        idle = self.model.core_power_w(PowerMode.IDLE_POLL, 1.2, ghz(3.1))
        assert stall < idle


class TestScaling:
    def setup_method(self):
        self.model = PowerModel()

    def test_dynamic_power_quadratic_in_v(self):
        base = self.model.dynamic_power_w(0.6, ghz(1))
        doubled_v = self.model.dynamic_power_w(1.2, ghz(1))
        assert doubled_v == pytest.approx(4 * base)

    def test_dynamic_power_linear_in_f(self):
        base = self.model.dynamic_power_w(1.0, ghz(1))
        assert self.model.dynamic_power_w(1.0, ghz(2)) == pytest.approx(2 * base)

    def test_activity_scales_dynamic(self):
        full = self.model.dynamic_power_w(1.0, ghz(1), activity=1.0)
        half = self.model.dynamic_power_w(1.0, ghz(1), activity=0.5)
        assert half == pytest.approx(full / 2)

    def test_negative_activity_rejected(self):
        with pytest.raises(ValueError):
            self.model.dynamic_power_w(1.0, ghz(1), activity=-0.1)

    def test_running_at_p0_beats_race_to_idle_break_even(self):
        """Sanity for race-to-halt: doing W cycles fast at P0 then sleeping in
        C6 costs less energy than doing them slowly at Pmin with no sleep."""
        cycles = 3.1e9 * 0.010  # 10 ms of work at P0
        t_fast = cycles / ghz(3.1)
        t_slow = cycles / ghz(0.8)
        e_fast = self.model.core_power_w(PowerMode.RUN, 1.2, ghz(3.1)) * t_fast
        e_fast += self.model.core_power_w(PowerMode.C6, 1.2, ghz(3.1)) * (t_slow - t_fast)
        e_slow = self.model.core_power_w(PowerMode.RUN, 0.65, ghz(0.8)) * t_slow
        # Race-to-halt is competitive (within the same order of magnitude);
        # the exact winner depends on leakage share, as in real silicon.
        assert e_fast < 2 * e_slow


class TestConfigValidation:
    def test_rejects_static_exceeding_total(self):
        with pytest.raises(ValueError):
            PowerModel(PowerModelConfig(core_max_power_w=5.0))

    def test_rejects_inverted_voltage_anchors(self):
        with pytest.raises(ValueError):
            PowerModel(PowerModelConfig(v_low=1.2, v_high=0.65))

    def test_unknown_mode_rejected(self):
        model = PowerModel()
        with pytest.raises(ValueError):
            model.core_power_w("not-a-mode", 1.0, ghz(1))  # type: ignore[arg-type]
