"""Tests for Table 1 configuration validation."""


from repro.cpu import PowerModelConfig, ProcessorConfig
from repro.sim.units import ghz
from repro.validation import validate_table1


class TestValidateTable1:
    def test_default_config_conforms(self):
        assert validate_table1(ProcessorConfig()) == []

    def test_wrong_core_count_flagged(self):
        problems = validate_table1(ProcessorConfig(n_cores=8))
        assert any("4 cores" in p for p in problems)

    def test_wrong_frequency_range_flagged(self):
        problems = validate_table1(ProcessorConfig(f_max_hz=ghz(4.0)))
        assert any("3.1 GHz" in p for p in problems)

    def test_wrong_pstate_count_flagged(self):
        problems = validate_table1(ProcessorConfig(n_pstates=10))
        assert any("15 P-states" in p for p in problems)

    def test_power_anchor_drift_flagged(self):
        config = ProcessorConfig(
            power=PowerModelConfig(core_max_power_w=40.0)
        )
        problems = validate_table1(config)
        assert any("80 W" in p for p in problems)

    def test_static_anchor_drift_flagged(self):
        config = ProcessorConfig(
            power=PowerModelConfig(static_w_at_v_high=9.0)
        )
        problems = validate_table1(config)
        assert any("static anchors" in p for p in problems)

    def test_voltage_range_flagged(self):
        problems = validate_table1(ProcessorConfig(v_min=0.8))
        assert any("0.65-1.2 V" in p for p in problems)
