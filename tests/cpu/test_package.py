"""Tests for the chip-wide DVFS clock domain."""

import pytest

from repro.cpu import CoreState, Job, ProcessorConfig
from repro.sim import Simulator, TraceRecorder
from repro.sim.units import US, ghz


def make_package(n_cores=2, initial_pstate=0, trace=None):
    sim = Simulator()
    config = ProcessorConfig(n_cores=n_cores, initial_pstate=initial_pstate)
    return sim, config.build_package(sim, trace=trace)


class TestTransitions:
    def test_lowering_takes_pll_halt_only(self):
        sim, package = make_package()
        package.set_pstate(14)
        assert package.transition_in_progress
        sim.run()
        assert package.pstate_index == 14
        assert sim.now == 5 * US

    def test_raising_waits_for_voltage_ramp(self):
        sim, package = make_package(initial_pstate=14)
        package.set_pstate(0)
        sim.run()
        assert package.pstate_index == 0
        assert sim.now == 93 * US  # 88 us ramp + 5 us PLL

    def test_same_state_is_noop(self):
        sim, package = make_package()
        package.set_pstate(0)
        assert not package.transition_in_progress
        sim.run()
        assert package.transitions == 0

    def test_index_clamped(self):
        sim, package = make_package()
        package.set_pstate(99)
        sim.run()
        assert package.pstate_index == package.pstates.max_index

    def test_running_job_pauses_during_pll_halt(self):
        sim, package = make_package()
        core = package.cores[0]
        done = []
        # 100 us of P0 work; a down-transition at t=10us inserts a 5 us halt
        # and then the job runs slower.
        core.dispatch(Job(3.1e9 * 100e-6, on_complete=lambda: done.append(sim.now)))
        sim.schedule(10 * US, package.set_pstate, 14)
        sim.run()
        # 10us at 3.1 GHz + 5us halt + remaining 90us-worth at 0.8 GHz.
        remaining_cycles = 3.1e9 * 90e-6
        expected = 10 * US + 5 * US + remaining_cycles / 0.8e9 * 1e9
        assert done[0] == pytest.approx(expected, abs=10)

    def test_all_cores_stall_together(self):
        sim, package = make_package(n_cores=2)
        a, b = package.cores
        done = []
        a.dispatch(Job(3.1e9 * 20e-6, on_complete=lambda: done.append(("a", sim.now))))
        b.dispatch(Job(3.1e9 * 20e-6, on_complete=lambda: done.append(("b", sim.now))))
        sim.schedule(10 * US, package.set_pstate, 1)
        sim.run()
        # Both cores paid the same 5 us halt (down-transition within same V? index
        # 0->1 lowers V, so no ramp) and finish together, later than 20 us.
        assert done[0][1] == done[1][1]
        assert done[0][1] > 20 * US

    def test_sleeping_core_unaffected_by_transition(self):
        sim, package = make_package(n_cores=2)
        sleeper = package.cores[1]
        sleeper.enter_sleep(package.cstates.by_name("C6"))
        package.set_pstate(14)
        sim.run()
        assert sleeper.state is CoreState.SLEEP

    def test_queued_target_applied_after_transition(self):
        sim, package = make_package(initial_pstate=14)
        package.set_pstate(0)     # long up-transition
        package.set_pstate(7)     # queued; latest wins
        sim.run()
        assert package.pstate_index == 7
        assert package.transitions == 2

    def test_queue_same_as_inflight_coalesces(self):
        sim, package = make_package()
        package.set_pstate(14)
        package.set_pstate(14)
        sim.run()
        assert package.transitions == 1

    def test_effective_target_during_transition(self):
        sim, package = make_package(initial_pstate=14)
        package.set_pstate(0)
        assert package.effective_target_index == 0
        assert package.at_max_performance  # heading to P0 counts
        package.set_pstate(3)
        assert package.effective_target_index == 3
        assert not package.at_max_performance


class TestHelpers:
    def test_set_frequency_maps_to_covering_pstate(self):
        sim, package = make_package()
        package.set_frequency(ghz(1.0))
        sim.run()
        assert package.frequency_hz >= ghz(1.0)
        assert package.pstate_index > 0

    def test_trace_records_frequency_changes(self):
        trace = TraceRecorder()
        sim, package = make_package(trace=trace)
        package.set_pstate(14)
        sim.run()
        channel = trace.event_channel("cpu.freq_ghz")
        assert channel.values[0] == pytest.approx(3.1)
        assert channel.values[-1] == pytest.approx(0.8)

    def test_energy_report_aggregates_cores(self):
        sim, package = make_package(n_cores=4)
        sim.schedule(1000 * US, lambda: None)
        sim.run()
        report = package.energy_report()
        # 4 idle-polling cores at P0 for 1 ms each.
        assert report.residency_ns["idle"] == 4 * 1000 * US
        assert report.energy_j > 0

    def test_busy_ns_per_core(self):
        sim, package = make_package(n_cores=2)
        package.cores[0].dispatch(Job(3.1e9 * 10e-6))
        sim.run()
        busy = package.busy_ns_per_core()
        assert busy[0] == 10 * US
        assert busy[1] == 0

    def test_rejects_zero_cores(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ProcessorConfig(n_cores=0).build_package(sim)
