"""Tests for C-state definitions and selection (paper Table 1 / Section 5)."""

import pytest

from repro.cpu import CState, CStateTable
from repro.sim.units import US


class TestDefaults:
    def test_paper_ladder(self):
        table = CStateTable()
        c1, c3, c6 = table
        assert (c1.name, c3.name, c6.name) == ("C1", "C3", "C6")
        assert [s.exit_latency_ns for s in table] == [2 * US, 10 * US, 22 * US]
        assert [s.target_residency_ns for s in table] == [10 * US, 40 * US, 150 * US]

    def test_by_name(self):
        table = CStateTable()
        assert table.by_name("C3").exit_latency_ns == 10 * US
        with pytest.raises(KeyError):
            table.by_name("C9")

    def test_shallowest_deepest(self):
        table = CStateTable()
        assert table.shallowest.name == "C1"
        assert table.deepest.name == "C6"


class TestDeepestAllowed:
    def setup_method(self):
        self.table = CStateTable()

    def test_long_idle_picks_c6(self):
        state = self.table.deepest_allowed(1_000 * US, latency_limit_ns=10**9)
        assert state is not None and state.name == "C6"

    def test_medium_idle_picks_c3(self):
        state = self.table.deepest_allowed(100 * US, latency_limit_ns=10**9)
        assert state is not None and state.name == "C3"

    def test_short_idle_picks_c1(self):
        state = self.table.deepest_allowed(15 * US, latency_limit_ns=10**9)
        assert state is not None and state.name == "C1"

    def test_tiny_idle_picks_nothing(self):
        assert self.table.deepest_allowed(5 * US, latency_limit_ns=10**9) is None

    def test_latency_limit_caps_depth(self):
        state = self.table.deepest_allowed(1_000 * US, latency_limit_ns=12 * US)
        assert state is not None and state.name == "C3"

    def test_boundary_residency_is_allowed(self):
        state = self.table.deepest_allowed(150 * US, latency_limit_ns=10**9)
        assert state is not None and state.name == "C6"


class TestValidation:
    def test_rejects_decreasing_exit_latency(self):
        bad = [
            CState("A", 1, exit_latency_ns=10, target_residency_ns=10),
            CState("B", 2, exit_latency_ns=5, target_residency_ns=20),
        ]
        with pytest.raises(ValueError):
            CStateTable(bad)

    def test_rejects_decreasing_residency(self):
        bad = [
            CState("A", 1, exit_latency_ns=5, target_residency_ns=20),
            CState("B", 2, exit_latency_ns=10, target_residency_ns=10),
        ]
        with pytest.raises(ValueError):
            CStateTable(bad)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            CState("A", 1, exit_latency_ns=-1, target_residency_ns=0)
