"""ExecAccount: per-job cpu/cycle/stall attribution on the core engine."""

import pytest

from repro.cpu import Job, ProcessorConfig
from repro.cpu.core import ExecAccount
from repro.sim import Simulator
from repro.sim.units import US


def make_package(n_cores=1, initial_pstate=0):
    sim = Simulator()
    config = ProcessorConfig(n_cores=n_cores, initial_pstate=initial_pstate)
    package = config.build_package(sim)
    return sim, package


def accounted_job(cycles, **kwargs):
    job = Job(cycles, **kwargs)
    job.account = ExecAccount()
    return job


class TestPlainRun:
    def test_uninterrupted_job_charges_cpu_and_cycles(self):
        sim, package = make_package()
        core = package.cores[0]
        cycles = 3.1e9 * 50e-6  # 50 us at P0
        job = accounted_job(cycles)
        core.dispatch(job)
        sim.run()
        account = job.account
        assert account.cpu_ns == 50 * US
        assert account.cycles == pytest.approx(cycles)
        assert account.stall_ns == 0
        assert account.first_start_ns == 0
        assert account.first_core == 0

    def test_jobs_without_account_are_untouched(self):
        sim, package = make_package()
        job = Job(1000)
        package.cores[0].dispatch(job)
        sim.run()
        assert job.account is None

    def test_first_start_records_queue_wait(self):
        sim, package = make_package()
        core = package.cores[0]
        core.dispatch(Job(3.1e9 * 20e-6))       # occupies the core 20 us
        waiting = accounted_job(1000)
        core.enqueue_pending(waiting)
        sim.run()
        assert waiting.account.first_start_ns == 20 * US


class TestPreemption:
    def test_preempted_wall_time_not_charged(self):
        sim, package = make_package()
        core = package.cores[0]
        job = accounted_job(3.1e9 * 40e-6)       # 40 us of work at P0
        core.dispatch(job)
        # A 10 us kernel handler lands mid-job.
        handler = accounted_job(3.1e9 * 10e-6, kernel=True)
        sim.schedule(15 * US, lambda: core.dispatch(handler, preempt=True))
        sim.run()
        assert job.account.cpu_ns == 40 * US      # its own on-CPU time only
        assert job.account.cycles == pytest.approx(3.1e9 * 40e-6)
        assert handler.account.cpu_ns == 10 * US
        assert handler.account.first_start_ns == 15 * US
        assert sim.now == 50 * US                 # total wall time

    def test_cycles_split_across_resume(self):
        sim, package = make_package()
        core = package.cores[0]
        job = accounted_job(3.1e9 * 40e-6)
        core.dispatch(job)
        sim.schedule(
            15 * US, lambda: core.dispatch(Job(3.1e9 * 10e-6), preempt=True)
        )
        sim.run()
        # Charged in two segments (15 us before, 25 us after) that sum
        # exactly to the job's cycle budget.
        assert job.account.cycles == pytest.approx(job.total_cycles)


class TestDvfs:
    def test_cycles_exact_across_frequency_change(self):
        sim, package = make_package(initial_pstate=14)  # 0.8 GHz
        core = package.cores[0]
        cycles = 0.8e9 * 100e-6                  # 100 us at 0.8 GHz
        job = accounted_job(cycles)
        core.dispatch(job)
        sim.schedule(10 * US, lambda: package.set_pstate(0))
        sim.run()
        account = job.account
        assert account.cycles == pytest.approx(cycles)
        # Ramp-up mid-job: finishes faster than at 0.8 GHz throughout,
        # but the halt window stalls the job rather than retiring cycles.
        assert account.stall_ns > 0
        assert account.cpu_ns + account.stall_ns == sim.now
        # The attribution identity: on-CPU time above the ideal F_max
        # cost is the DVFS penalty, and it is positive for a ramp.
        ideal_ns = account.cycles / package.max_frequency_hz * 1e9
        assert account.cpu_ns + account.stall_ns > ideal_ns

    def test_stall_charged_to_current_job_only(self):
        sim, package = make_package(initial_pstate=14)
        core = package.cores[0]
        running = accounted_job(0.8e9 * 100e-6)
        queued = accounted_job(1000)
        core.dispatch(running)
        core.enqueue_pending(queued)
        sim.schedule(10 * US, lambda: package.set_pstate(0))
        sim.run()
        assert running.account.stall_ns > 0
        assert queued.account.stall_ns == 0
