"""Tests for P-state tables and DVFS transition timing (paper Fig. 1, Table 1)."""

import pytest

from repro.cpu import DVFSTimingModel, PState, PStateTable
from repro.sim.units import US, ghz


class TestPStateTable:
    def test_table_matches_table1(self):
        table = PStateTable.linear()
        assert len(table) == 15
        assert table.p0.freq_hz == pytest.approx(ghz(3.1))
        assert table.p0.voltage == pytest.approx(1.2)
        assert table.deepest.freq_hz == pytest.approx(ghz(0.8))
        assert table.deepest.voltage == pytest.approx(0.65)

    def test_frequencies_strictly_decreasing(self):
        table = PStateTable.linear()
        freqs = [s.freq_hz for s in table]
        assert all(a > b for a, b in zip(freqs, freqs[1:]))

    def test_voltage_decreases_with_depth(self):
        table = PStateTable.linear()
        volts = [s.voltage for s in table]
        assert all(a > b for a, b in zip(volts, volts[1:]))

    def test_index_for_frequency_exact(self):
        table = PStateTable.linear()
        for state in table:
            assert table.index_for_frequency(state.freq_hz) == state.index

    def test_index_for_frequency_picks_covering_state(self):
        table = PStateTable.linear()
        # Slightly above P14's frequency must map to P13 (>= target).
        target = table[14].freq_hz + 1e6
        assert table.index_for_frequency(target) == 13

    def test_index_for_frequency_clamps(self):
        table = PStateTable.linear()
        assert table.index_for_frequency(ghz(99)) == 0
        assert table.index_for_frequency(ghz(0.1)) == table.max_index

    def test_clamp_index(self):
        table = PStateTable.linear()
        assert table.clamp_index(-3) == 0
        assert table.clamp_index(99) == 14
        assert table.clamp_index(7) == 7

    def test_rejects_wrong_index_order(self):
        with pytest.raises(ValueError):
            PStateTable([PState(1, ghz(3), 1.2)])

    def test_rejects_nonmonotone_frequency(self):
        with pytest.raises(ValueError):
            PStateTable([PState(0, ghz(1), 1.0), PState(1, ghz(2), 1.2)])

    def test_rejects_tiny_table(self):
        with pytest.raises(ValueError):
            PStateTable.linear(count=1)

    def test_pstate_validation(self):
        with pytest.raises(ValueError):
            PState(0, -1.0, 1.0)
        with pytest.raises(ValueError):
            PState(0, ghz(1), 0.0)


class TestDVFSTimingModel:
    def setup_method(self):
        self.table = PStateTable.linear()
        self.model = DVFSTimingModel()

    def test_raise_has_voltage_ramp_then_halt(self):
        ramp, halt = self.model.plan(self.table.deepest, self.table.p0)
        # dV = 550 mV at 6.25 mV/us = 88 us ramp.
        assert ramp == 88 * US
        assert halt == 5 * US

    def test_lower_has_no_ramp(self):
        ramp, halt = self.model.plan(self.table.p0, self.table.deepest)
        assert ramp == 0
        assert halt == 5 * US

    def test_lowering_is_much_faster_than_raising(self):
        # Matches the paper: highest->lowest ~5 us, lowest->highest ~50-90 us.
        up = self.model.total_latency_ns(self.table.deepest, self.table.p0)
        down = self.model.total_latency_ns(self.table.p0, self.table.deepest)
        assert down == 5 * US
        assert up > 10 * down

    def test_same_state_only_pll(self):
        ramp, halt = self.model.plan(self.table.p0, self.table.p0)
        assert ramp == 0
        assert halt == 5 * US

    def test_small_step_ramp_proportional_to_dv(self):
        one_step = self.model.plan(self.table[1], self.table[0])[0]
        two_step = self.model.plan(self.table[2], self.table[0])[0]
        assert two_step == pytest.approx(2 * one_step, abs=2)
