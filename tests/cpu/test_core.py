"""Tests for the preemptible core execution engine."""

import pytest

from repro.cpu import CoreBusyError, CoreState, Job, ProcessorConfig
from repro.sim import Simulator
from repro.sim.units import US


def make_package(n_cores=1, initial_pstate=0):
    sim = Simulator()
    config = ProcessorConfig(n_cores=n_cores, initial_pstate=initial_pstate)
    package = config.build_package(sim)
    return sim, package


class TestBasicExecution:
    def test_job_duration_scales_with_frequency(self):
        sim, package = make_package()
        core = package.cores[0]
        done_at = []
        core.dispatch(Job(3.1e9 * 100e-6, on_complete=lambda: done_at.append(sim.now)))
        sim.run()
        assert done_at == [100 * US]  # 100 us of P0 cycles at 3.1 GHz

    def test_job_slower_at_deep_pstate(self):
        sim, package = make_package(initial_pstate=14)  # 0.8 GHz
        core = package.cores[0]
        done_at = []
        cycles = 0.8e9 * 100e-6
        core.dispatch(Job(cycles, on_complete=lambda: done_at.append(sim.now)))
        sim.run()
        assert done_at == [100 * US]

    def test_core_idle_after_completion(self):
        sim, package = make_package()
        core = package.cores[0]
        core.dispatch(Job(1000))
        sim.run()
        assert core.state is CoreState.IDLE
        assert core.current_job is None

    def test_on_idle_callback_fires(self):
        sim, package = make_package()
        core = package.cores[0]
        idled = []
        core.on_idle = idled.append
        core.dispatch(Job(1000))
        sim.run()
        assert idled == [core]

    def test_zero_cycle_job_completes_immediately(self):
        sim, package = make_package()
        core = package.cores[0]
        done = []
        core.dispatch(Job(0, on_complete=lambda: done.append(sim.now)))
        sim.run()
        assert done == [0]

    def test_dispatch_to_busy_core_without_preempt_raises(self):
        sim, package = make_package()
        core = package.cores[0]
        core.dispatch(Job(10_000))
        with pytest.raises(CoreBusyError):
            core.dispatch(Job(10))

    def test_busy_accounting(self):
        sim, package = make_package()
        core = package.cores[0]
        core.dispatch(Job(3.1e9 * 50e-6))
        sim.run()
        assert core.busy_ns_total() == 50 * US

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            Job(-1)


class TestPreemption:
    def test_handler_preempts_and_job_resumes(self):
        sim, package = make_package()
        core = package.cores[0]
        order = []
        core.dispatch(Job(3.1e9 * 100e-6, on_complete=lambda: order.append(("app", sim.now))))
        # At t=10us, a 20us handler preempts.
        handler = Job(3.1e9 * 20e-6, on_complete=lambda: order.append(("irq", sim.now)))
        sim.schedule(10 * US, core.dispatch, handler, True)
        sim.run()
        assert order == [("irq", 30 * US), ("app", 120 * US)]

    def test_nested_preemption(self):
        sim, package = make_package()
        core = package.cores[0]
        order = []
        core.dispatch(Job(3.1e9 * 100e-6, on_complete=lambda: order.append("app")))
        outer = Job(3.1e9 * 50e-6, on_complete=lambda: order.append("outer"))
        inner = Job(3.1e9 * 10e-6, on_complete=lambda: order.append("inner"))
        sim.schedule(10 * US, core.dispatch, outer, True)
        sim.schedule(20 * US, core.dispatch, inner, True)
        sim.run()
        assert order == ["inner", "outer", "app"]
        # total work conserved: 160 us of cycles.
        assert sim.now == 160 * US

    def test_preempt_idle_core_runs_immediately(self):
        sim, package = make_package()
        core = package.cores[0]
        done = []
        core.dispatch(Job(3.1e9 * 5e-6, on_complete=lambda: done.append(sim.now)), preempt=True)
        sim.run()
        assert done == [5 * US]

    def test_queue_depth_counts_stack_and_pending(self):
        sim, package = make_package()
        core = package.cores[0]
        core.dispatch(Job(10_000))
        core.dispatch(Job(100), preempt=True)
        assert core.queue_depth() == 1  # the preempted job


class TestSleepAndWake:
    def test_sleep_then_wake_pays_exit_latency(self):
        sim, package = make_package()
        core = package.cores[0]
        c6 = package.cstates.by_name("C6")
        core.enter_sleep(c6)
        assert core.is_sleeping
        done = []
        sim.schedule(100 * US, core.dispatch, Job(0, on_complete=lambda: done.append(sim.now)))
        sim.run()
        assert done == [100 * US + c6.exit_latency_ns]

    def test_wake_extra_latency_configurable(self):
        sim, package = make_package()
        core = package.cores[0]
        core.wake_extra_ns = 6 * US  # MWAIT/MONITOR overhead knob
        c1 = package.cstates.by_name("C1")
        core.enter_sleep(c1)
        done = []
        sim.schedule(0, core.dispatch, Job(0, on_complete=lambda: done.append(sim.now)))
        sim.run()
        assert done == [c1.exit_latency_ns + 6 * US]

    def test_cannot_sleep_while_running(self):
        sim, package = make_package()
        core = package.cores[0]
        core.dispatch(Job(10_000))
        with pytest.raises(RuntimeError):
            core.enter_sleep(package.cstates.by_name("C1"))

    def test_wake_is_idempotent_while_waking(self):
        sim, package = make_package()
        core = package.cores[0]
        core.enter_sleep(package.cstates.by_name("C6"))
        core.wake()
        core.wake()  # no double wake event
        sim.run()
        assert core.state is CoreState.IDLE

    def test_multiple_jobs_queued_during_sleep_run_in_order(self):
        sim, package = make_package()
        core = package.cores[0]
        core.enter_sleep(package.cstates.by_name("C3"))
        order = []
        core.dispatch(Job(1000, on_complete=lambda: order.append("a")))
        core.dispatch(Job(1000, on_complete=lambda: order.append("b")))
        sim.run()
        assert order == ["a", "b"]

    def test_cstate_entry_counted(self):
        sim, package = make_package()
        core = package.cores[0]
        core.enter_sleep(package.cstates.by_name("C6"))
        core.wake()
        sim.run()
        core.enter_sleep(package.cstates.by_name("C6"))
        core.wake()
        sim.run()
        assert core.cstate_entries == {"C6": 2}

    def test_sleep_residency_metered(self):
        sim, package = make_package()
        core = package.cores[0]
        c6 = package.cstates.by_name("C6")
        core.enter_sleep(c6)
        sim.schedule(500 * US, core.wake)
        sim.run()
        report = core.meter.report()
        # The entry transition is metered separately (churn cost): C6
        # residency is the visit minus the entry latency.
        assert report.residency_ns["C6"] == 500 * US - c6.entry_latency_ns

    def test_sleep_entry_transition_charged(self):
        sim, package = make_package()
        core = package.cores[0]
        c6 = package.cstates.by_name("C6")
        core.enter_sleep(c6)
        sim.schedule(500 * US, core.wake)
        sim.run()
        report = core.meter.report()
        # Entry (15 us) at transition power + exit (22 us) while waking.
        assert report.residency_ns["waking"] == c6.entry_latency_ns + c6.exit_latency_ns

    def test_short_sleep_visit_costs_more_than_it_saves(self):
        # The churn effect ([11] in the paper): a C6 visit much shorter than
        # its residency consumes more energy than staying in C1.
        from repro.cpu import PowerMode, PowerModel

        model = PowerModel()
        c6 = make_package()[1].cstates.by_name("C6")
        visit_ns = 30 * US
        churn = (
            model.core_power_w(PowerMode.WAKING, 1.2, 3.1e9)
            * (c6.entry_latency_ns + c6.exit_latency_ns)
            + model.core_power_w(PowerMode.C6, 1.2, 3.1e9)
            * (visit_ns - c6.entry_latency_ns)
        )
        stay_c1 = model.core_power_w(PowerMode.C1, 1.2, 3.1e9) * visit_ns
        assert churn > stay_c1

    def test_idle_since_tracks_last_idle_entry(self):
        sim, package = make_package()
        core = package.cores[0]
        core.dispatch(Job(3.1e9 * 10e-6))
        sim.run()
        assert core.idle_since == 10 * US
