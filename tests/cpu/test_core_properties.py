"""Property-based tests: work conservation on the core engine.

Whatever mixture of preemptions, frequency changes, and stalls happens,
the total cycles retired must equal the cycles submitted, and busy time
must equal the per-segment cycles/frequency integral.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import Job, ProcessorConfig
from repro.sim import Simulator


@given(
    job_cycles=st.lists(
        st.floats(min_value=1_000, max_value=5e6, allow_nan=False),
        min_size=1,
        max_size=10,
    ),
    preempt_times=st.lists(
        st.integers(min_value=1, max_value=2_000_000), max_size=5
    ),
    pstate_changes=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=2_000_000),
            st.integers(min_value=0, max_value=14),
        ),
        max_size=5,
    ),
)
@settings(max_examples=40, deadline=None)
def test_all_submitted_work_completes(job_cycles, preempt_times, pstate_changes):
    sim = Simulator()
    package = ProcessorConfig(n_cores=1).build_package(sim)
    core = package.cores[0]
    completed = []

    # Chain the jobs: each dispatches the next on completion.
    def submit(index):
        if index >= len(job_cycles):
            return
        core.dispatch(
            Job(job_cycles[index], on_complete=lambda: (completed.append(index), submit(index + 1))),
        )

    submit(0)
    for t in preempt_times:
        sim.schedule_at(
            t, lambda: core.dispatch(Job(10_000, on_complete=lambda: completed.append("irq")), preempt=True)
        )
    for t, index in pstate_changes:
        sim.schedule_at(t, package.set_pstate, index)
    sim.run()
    app_completed = [c for c in completed if c != "irq"]
    assert app_completed == list(range(len(job_cycles)))
    assert completed.count("irq") == len(preempt_times)


@given(
    cycles=st.floats(min_value=1_000, max_value=1e7, allow_nan=False),
    pstate=st.integers(min_value=0, max_value=14),
)
@settings(max_examples=40, deadline=None)
def test_busy_time_matches_cycles_over_frequency(cycles, pstate):
    sim = Simulator()
    package = ProcessorConfig(n_cores=1, initial_pstate=pstate).build_package(sim)
    core = package.cores[0]
    core.dispatch(Job(cycles))
    sim.run()
    expected_ns = cycles / package.frequency_hz * 1e9
    assert abs(core.busy_ns_total() - expected_ns) <= 1


@given(
    sleep_state=st.sampled_from(["C1", "C3", "C6"]),
    idle_ns=st.integers(min_value=1, max_value=10_000_000),
)
@settings(max_examples=40, deadline=None)
def test_wake_latency_is_exactly_exit_latency(sleep_state, idle_ns):
    sim = Simulator()
    package = ProcessorConfig(n_cores=1).build_package(sim)
    core = package.cores[0]
    cstate = package.cstates.by_name(sleep_state)
    core.enter_sleep(cstate)
    done = []
    sim.schedule_at(idle_ns, core.dispatch, Job(0, on_complete=lambda: done.append(sim.now)))
    sim.run()
    assert done == [idle_ns + cstate.exit_latency_ns]
