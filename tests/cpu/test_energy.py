"""Tests for the per-core energy meter."""

import pytest

from repro.cpu import PowerMeter, PowerMode, PowerModel
from repro.sim import Simulator
from repro.sim.units import MS, ghz


def make_meter():
    sim = Simulator()
    meter = PowerMeter(sim, PowerModel())
    return sim, meter


def advance(sim, ns):
    sim.schedule(ns, lambda: None)
    sim.run()


class TestIntegration:
    def test_constant_power_segment(self):
        sim, meter = make_meter()
        meter.start(PowerMode.RUN, 1.2, ghz(3.1))
        advance(sim, MS)  # 1 ms at 20 W -> 20 mJ
        report = meter.report()
        assert report.energy_j == pytest.approx(20.0 * 1e-3, rel=1e-6)

    def test_two_segments_sum(self):
        sim, meter = make_meter()
        meter.start(PowerMode.RUN, 1.2, ghz(3.1))
        advance(sim, MS)
        meter.set_mode(PowerMode.C6)
        advance(sim, 9 * MS)
        report = meter.report()
        assert report.energy_j == pytest.approx(20e-3, rel=1e-6)  # C6 is free

    def test_residency_tracked_per_mode(self):
        sim, meter = make_meter()
        meter.start(PowerMode.IDLE_POLL, 1.2, ghz(3.1))
        advance(sim, 2 * MS)
        meter.set_mode(PowerMode.C3)
        advance(sim, 3 * MS)
        report = meter.report()
        assert report.residency_ns["idle"] == 2 * MS
        assert report.residency_ns["C3"] == 3 * MS

    def test_energy_by_mode(self):
        sim, meter = make_meter()
        meter.start(PowerMode.C3, 1.2, ghz(3.1))
        advance(sim, MS)
        report = meter.report()
        assert report.energy_by_mode_j["C3"] == pytest.approx(1.64e-3, rel=1e-6)

    def test_voltage_change_mid_stream(self):
        sim, meter = make_meter()
        model = PowerModel()
        meter.start(PowerMode.C1, 1.2, ghz(3.1))
        advance(sim, MS)
        meter.set_mode(PowerMode.C1, voltage=0.65)
        advance(sim, MS)
        report = meter.report()
        expected = (model.static_power_w(1.2) + model.static_power_w(0.65)) * 1e-3
        assert report.energy_j == pytest.approx(expected, rel=1e-6)

    def test_report_is_idempotent_snapshot(self):
        sim, meter = make_meter()
        meter.start(PowerMode.RUN, 1.2, ghz(3.1))
        advance(sim, MS)
        first = meter.report()
        second = meter.report()
        assert second.energy_j == pytest.approx(first.energy_j)

    def test_unstarted_meter_rejects_set_mode(self):
        _, meter = make_meter()
        with pytest.raises(RuntimeError):
            meter.set_mode(PowerMode.RUN)

    def test_zero_length_segments_free(self):
        sim, meter = make_meter()
        meter.start(PowerMode.RUN, 1.2, ghz(3.1))
        meter.set_mode(PowerMode.C1)
        meter.set_mode(PowerMode.RUN)
        assert meter.report().energy_j == 0.0


class TestEnergyReportMerge:
    def test_merge_sums_everything(self):
        sim, meter_a = make_meter()
        meter_a.start(PowerMode.RUN, 1.2, ghz(3.1))
        advance(sim, MS)
        sim2, meter_b = make_meter()
        meter_b.start(PowerMode.C3, 1.2, ghz(3.1))
        advance(sim2, MS)
        merged = meter_a.report().merge(meter_b.report())
        assert merged.energy_j == pytest.approx(20e-3 + 1.64e-3, rel=1e-6)
        assert merged.residency_ns == {"run": MS, "C3": MS}
        assert set(merged.energy_by_mode_j) == {"run", "C3"}
