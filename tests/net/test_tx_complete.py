"""Tests for optional tx-completion interrupts (the ICR's IT_TX cause)."""

from repro.cpu import ProcessorConfig
from repro.net import ICR, Frame, NIC, NICDriver
from repro.oskernel import IRQController, NetStackCosts
from repro.sim import Simulator
from repro.sim.units import MS


class WireStub:
    name = "wire"
    queue_depth = 0

    def __init__(self):
        self.sent = []

    def send(self, frame):
        self.sent.append(frame)


def make(tx_complete=True):
    sim = Simulator()
    package = ProcessorConfig(n_cores=2).build_package(sim)
    irq = IRQController(sim, package)
    nic = NIC(sim, tx_complete_interrupts=tx_complete)
    nic.attach_port(WireStub())  # type: ignore[arg-type]
    driver = NICDriver(sim, nic, irq, NetStackCosts())
    driver.packet_sink = lambda f: None
    return sim, package, nic, driver


def response(i=0):
    return Frame("server", "client", payload_bytes=5_000, kind="response", req_id=i)


class TestTxComplete:
    def test_completion_sets_it_tx_and_interrupts(self):
        sim, package, nic, driver = make()
        seen = []
        driver.icr_hooks.append(seen.append)
        driver.transmit(response())
        sim.run()
        assert any(bits & ICR.IT_TX for bits in seen)
        assert driver.tx_reclaimed == 1

    def test_completions_coalesce(self):
        sim, package, nic, driver = make()
        for i in range(10):
            sim.schedule_at(i * 1_000, driver.transmit, response(i))
        sim.run()
        assert driver.tx_reclaimed == 10
        assert driver.hardirqs <= 2  # moderated into one or two interrupts

    def test_disabled_by_default(self):
        sim, package, nic, driver = make(tx_complete=False)
        seen = []
        driver.icr_hooks.append(seen.append)
        driver.transmit(response())
        sim.run()
        assert not any(bits & ICR.IT_TX for bits in seen)
        assert driver.tx_reclaimed == 0

    def test_reclamation_burns_cycles(self):
        sim, package, nic, driver = make()
        for i in range(50):
            sim.schedule_at(i * 1_000, driver.transmit, response(i))
        sim.run()
        # hardirq + reclamation softirq work landed on core 0.
        assert package.cores[0].busy_ns_total() > 0

    def test_take_tx_completions_resets(self):
        sim, package, nic, driver = make()
        driver.transmit(response())
        sim.run()
        assert nic.take_tx_completions() == 0  # driver already drained it


class TestTxCompletionCoalescing:
    """The pending-completion counter and interrupt counts under bursts."""

    def test_pending_counter_accumulates_then_resets(self):
        # No driver attached: completions pile up in the NIC until the
        # (eventual) reclaim drains them in one go.
        sim = Simulator()
        nic = NIC(sim, tx_complete_interrupts=True)
        nic.attach_port(WireStub())  # type: ignore[arg-type]
        for i in range(7):
            nic.transmit(response(i))
        sim.run()
        assert nic.tx_completions_pending == 7
        assert nic.take_tx_completions() == 7
        assert nic.tx_completions_pending == 0
        assert nic.take_tx_completions() == 0

    def test_burst_coalesces_into_few_interrupts(self):
        sim, package, nic, driver = make()
        it_tx_posts = []
        driver.icr_hooks.append(
            lambda bits: it_tx_posts.append(bits) if bits & ICR.IT_TX else None
        )
        for i in range(100):
            sim.schedule_at(i * 200, driver.transmit, response(i))
        sim.run()
        # Every completion is reclaimed exactly once...
        assert driver.tx_reclaimed == 100
        assert nic.tx_frames == 100
        assert nic.take_tx_completions() == 0
        # ...but moderation folds the dense burst into far fewer
        # interrupts than one per completion.
        assert 1 <= len(it_tx_posts) < 100
        assert driver.hardirqs == len(it_tx_posts)

    def test_sparse_transmits_interrupt_individually(self):
        sim, package, nic, driver = make()
        gap = 5 * MS  # far beyond the moderator's throttle window
        for i in range(4):
            sim.schedule_at(i * gap, driver.transmit, response(i))
        sim.run()
        assert driver.tx_reclaimed == 4
        assert driver.hardirqs == 4
