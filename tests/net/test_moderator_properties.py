"""Property-based tests for interrupt-moderation invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import InterruptModerator, ModerationConfig
from repro.sim import Simulator
from repro.sim.units import US

event_times = st.lists(
    st.integers(min_value=0, max_value=5_000_000), min_size=1, max_size=100
).map(sorted)


@given(times=event_times)
@settings(max_examples=60, deadline=None)
def test_mitt_gap_always_respected(times):
    sim = Simulator()
    config = ModerationConfig(pitt_ns=25 * US, mitt_ns=100 * US, aitt_ns=200 * US)
    fires = []
    mod = InterruptModerator(sim, config, lambda: fires.append(sim.now))
    for t in times:
        sim.schedule_at(t, mod.notify_event)
    sim.run()
    for a, b in zip(fires, fires[1:]):
        assert b - a >= config.mitt_ns


@given(times=event_times)
@settings(max_examples=60, deadline=None)
def test_every_event_is_eventually_covered_by_an_interrupt(times):
    """No packet waits forever: after the last event there is at least one
    interrupt at or after it."""
    sim = Simulator()
    config = ModerationConfig(pitt_ns=25 * US, mitt_ns=100 * US, aitt_ns=200 * US)
    fires = []
    mod = InterruptModerator(sim, config, lambda: fires.append(sim.now))
    for t in times:
        sim.schedule_at(t, mod.notify_event)
    sim.run()
    assert fires
    assert fires[-1] >= times[-1]


@given(times=event_times)
@settings(max_examples=60, deadline=None)
def test_wait_bounded_by_aitt_plus_mitt(times):
    """The earliest pending event never waits longer than AITT after its
    arrival plus one MITT gap (the absolute-timer guarantee)."""
    sim = Simulator()
    config = ModerationConfig(pitt_ns=25 * US, mitt_ns=100 * US, aitt_ns=200 * US)
    fires = []
    mod = InterruptModerator(sim, config, lambda: fires.append(sim.now))
    for t in times:
        sim.schedule_at(t, mod.notify_event)
    sim.run()
    for t in times:
        covering = min(f for f in fires if f >= t)
        assert covering - t <= config.aitt_ns + config.mitt_ns
