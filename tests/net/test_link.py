"""Tests for link serialization and delivery."""

import pytest

from repro.net import Frame, Link
from repro.sim import Simulator
from repro.sim.units import US, gbps


class Sink:
    def __init__(self, name, sim=None):
        self.name = name
        self.sim = sim
        self.received = []

    def receive_frame(self, frame):
        self.received.append((self.sim.now if self.sim else None, frame))


def make_link(bandwidth=gbps(10), latency=1 * US):
    sim = Simulator()
    link = Link(sim, bandwidth_bps=bandwidth, latency_ns=latency)
    a, b = Sink("a", sim), Sink("b", sim)
    link.attach(a, b)
    return sim, link, a, b


class TestLink:
    def test_delivery_time_serialization_plus_latency(self):
        sim, link, a, b = make_link()
        # 1250 wire bytes = 1 us at 10 Gb/s, +1 us propagation.
        frame = Frame("a", "b", payload_bytes=1250 - 66)
        link.endpoint_port(a).send(frame)
        sim.run()
        assert b.received[0][0] == 2 * US

    def test_fifo_serialization_of_queued_frames(self):
        sim, link, a, b = make_link()
        port = link.endpoint_port(a)
        f1 = Frame("a", "b", payload_bytes=1250 - 66)
        f2 = Frame("a", "b", payload_bytes=1250 - 66)
        port.send(f1)
        port.send(f2)
        sim.run()
        times = [t for t, _ in b.received]
        assert times == [2 * US, 3 * US]  # second waits for the wire
        assert [f.frame_id for _, f in b.received] == [f1.frame_id, f2.frame_id]

    def test_full_duplex_directions_independent(self):
        sim, link, a, b = make_link()
        link.endpoint_port(a).send(Frame("a", "b", payload_bytes=1250 - 66))
        link.endpoint_port(b).send(Frame("b", "a", payload_bytes=1250 - 66))
        sim.run()
        assert len(a.received) == 1
        assert len(b.received) == 1
        assert a.received[0][0] == b.received[0][0] == 2 * US

    def test_big_message_occupies_wire_longer(self):
        sim, link, a, b = make_link()
        small = Frame("a", "b", payload_bytes=500)
        big = Frame("a", "b", payload_bytes=100_000)
        link.endpoint_port(a).send(big)
        link.endpoint_port(a).send(small)
        sim.run()
        # Small frame waits behind the ~80 us serialization of the big one.
        assert b.received[1][0] > 80 * US

    def test_port_statistics(self):
        sim, link, a, b = make_link()
        port = link.endpoint_port(a)
        frame = Frame("a", "b", payload_bytes=1000)
        port.send(frame)
        sim.run()
        assert port.frames_carried == 1
        assert port.bytes_carried == frame.wire_bytes

    def test_unattached_device_rejected(self):
        sim, link, a, b = make_link()
        with pytest.raises(ValueError):
            link.endpoint_port(Sink("stranger"))

    def test_invalid_parameters_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, bandwidth_bps=0)
        with pytest.raises(ValueError):
            Link(sim, latency_ns=-1)


class TestSwitchIntegration:
    def test_two_hop_forwarding(self):
        from repro.net import Switch

        sim = Simulator()
        switch = Switch(sim)
        client, server = Sink("client", sim), Sink("server", sim)
        l1 = Link(sim)
        l2 = Link(sim)
        l1.attach(client, switch)
        l2.attach(switch, server)
        switch.attach_link(l1, "client")
        switch.attach_link(l2, "server")

        l1.endpoint_port(client).send(Frame("client", "server", payload_bytes=1250 - 66))
        sim.run()
        # 1 us serialize + 1 us prop + 1 us forward + 1 us serialize + 1 us prop.
        assert server.received[0][0] == 5 * US
        assert switch.frames_forwarded == 1

    def test_unknown_destination_dropped(self):
        from repro.net import Switch

        sim = Simulator()
        switch = Switch(sim)
        client = Sink("client", sim)
        l1 = Link(sim)
        l1.attach(client, switch)
        switch.attach_link(l1, "client")
        l1.endpoint_port(client).send(Frame("client", "nowhere", payload_bytes=100))
        sim.run()
        assert switch.frames_dropped == 1

    def test_known_destinations(self):
        from repro.net import Switch

        sim = Simulator()
        switch = Switch(sim)
        client = Sink("client", sim)
        l1 = Link(sim)
        l1.attach(client, switch)
        switch.attach_link(l1, "client")
        assert switch.known_destinations == ["client"]
