"""Tests for the NIC model and its driver (rx path of Figure 3)."""

from repro.cpu import CoreState, ProcessorConfig
from repro.net import ICR, Frame, ModerationConfig, NIC, NICDriver
from repro.oskernel import IRQController, NetStackCosts
from repro.sim import Simulator, TraceRecorder
from repro.sim.units import US


class WireStub:
    """A fake link endpoint capturing what the NIC transmits."""

    name = "wire"

    def __init__(self):
        self.sent = []

    def send(self, frame):
        self.sent.append(frame)

    @property
    def queue_depth(self):
        return 0


def make_node(moderation=None, dma_latency=10 * US, trace=None):
    sim = Simulator()
    package = ProcessorConfig(n_cores=2).build_package(sim)
    irq = IRQController(sim, package)
    nic = NIC(
        sim,
        dma_latency_ns=dma_latency,
        moderation=moderation or ModerationConfig(),
        trace=trace,
    )
    wire = WireStub()
    nic.attach_port(wire)  # type: ignore[arg-type]
    driver = NICDriver(sim, nic, irq, NetStackCosts())
    return sim, package, nic, driver, wire


def request(created_ns=0):
    return Frame("client", "server", payload_bytes=200, kind="request",
                 payload_prefix=b"GET /ind", created_ns=created_ns)


class TestRxPath:
    def test_packet_delivered_to_sink(self):
        sim, package, nic, driver, _ = make_node()
        got = []
        driver.packet_sink = lambda f: got.append((sim.now, f))
        nic.receive_frame(request())
        sim.run()
        assert len(got) == 1

    def test_rx_delivery_latency_in_expected_band(self):
        # DMA (10us) + PITT (25us) + hardirq + softirq: tens of microseconds,
        # the band the paper's 86us average lives in.
        sim, package, nic, driver, _ = make_node()
        got = []
        driver.packet_sink = lambda f: got.append(sim.now)
        nic.receive_frame(request())
        sim.run()
        assert 35 * US < got[0] < 120 * US

    def test_burst_coalesced_into_one_interrupt(self):
        sim, package, nic, driver, _ = make_node()
        got = []
        driver.packet_sink = lambda f: got.append(sim.now)
        for t in range(0, 10_000, 1_000):
            sim.schedule_at(t, nic.receive_frame, request())
        sim.run()
        assert len(got) == 10
        assert driver.hardirqs == 1  # one interrupt for the whole burst

    def test_hw_taps_fire_before_dma(self):
        sim, package, nic, driver, _ = make_node()
        tap_times, sink_times = [], []
        nic.rx_hw_taps.append(lambda f: tap_times.append(sim.now))
        driver.packet_sink = lambda f: sink_times.append(sim.now)
        sim.schedule_at(5 * US, nic.receive_frame, request())
        sim.run()
        assert tap_times == [5 * US]  # at wire arrival
        assert sink_times[0] > tap_times[0] + nic.dma_latency_ns

    def test_rx_ring_overflow_drops(self):
        sim, package, nic, driver, _ = make_node()
        nic.rx_ring_size = 4
        driver.packet_sink = lambda f: None
        # Stall delivery by keeping the housekeeping core busy with an
        # enormous non-preemptible backlog of kernel work? Instead, flood
        # faster than DMA+interrupt can drain within one PITT window.
        for i in range(50):
            sim.schedule_at(i * 100, nic.receive_frame, request())
        sim.run()
        assert nic.rx_dropped > 0
        assert driver.frames_delivered + nic.rx_dropped == 50

    def test_napi_budget_causes_repoll(self):
        sim, package, nic, driver, _ = make_node()
        driver.napi_budget = 4
        got = []
        driver.packet_sink = lambda f: got.append(sim.now)
        for i in range(10):
            sim.schedule_at(i * 100, nic.receive_frame, request())
        sim.run()
        assert len(got) == 10
        assert driver.napi_polls >= 3  # 4+4+2

    def test_icr_hooks_see_bits(self):
        sim, package, nic, driver, _ = make_node()
        driver.packet_sink = lambda f: None
        seen = []
        driver.icr_hooks.append(seen.append)
        nic.receive_frame(request())
        sim.run()
        assert seen and seen[0] & ICR.IT_RX

    def test_rx_sw_taps_called_per_packet(self):
        sim, package, nic, driver, _ = make_node()
        driver.packet_sink = lambda f: None
        seen = []
        driver.rx_sw_taps.append(lambda f: seen.append(f.frame_id))
        for i in range(3):
            sim.schedule_at(i * 100, nic.receive_frame, request())
        sim.run()
        assert len(seen) == 3

    def test_interrupt_wakes_sleeping_core(self):
        sim, package, nic, driver, _ = make_node()
        core = package.cores[0]
        core.enter_sleep(package.cstates.by_name("C6"))
        got = []
        driver.packet_sink = lambda f: got.append(sim.now)
        nic.receive_frame(request())
        sim.run()
        assert got  # delivered despite the sleeping core
        assert core.state is CoreState.IDLE


class TestTxPath:
    def test_transmit_reaches_wire_after_dma(self):
        sim, package, nic, driver, wire = make_node()
        frame = Frame("server", "client", payload_bytes=8000, kind="response")
        driver.transmit(frame)
        sim.run()
        assert wire.sent == [frame]

    def test_tx_taps_and_counters(self):
        sim, package, nic, driver, wire = make_node()
        seen = []
        nic.tx_hw_taps.append(lambda f: seen.append(f.wire_bytes))
        frame = Frame("server", "client", payload_bytes=8000, kind="response")
        driver.transmit(frame)
        sim.run()
        assert seen == [frame.wire_bytes]
        assert nic.tx_bytes == frame.wire_bytes
        assert nic.tx_frames == 1


class TestTrace:
    def test_rx_tx_byte_channels_recorded(self):
        trace = TraceRecorder()
        sim, package, nic, driver, wire = make_node(trace=trace)
        driver.packet_sink = lambda f: None
        nic.receive_frame(request())
        driver.transmit(Frame("server", "client", payload_bytes=5000))
        sim.run()
        assert trace.counter_channel("eth0.rx_bytes").total > 0
        assert trace.counter_channel("eth0.tx_bytes").total > 0


class TestNCAPPostPath:
    def test_post_interrupt_now_delivers_bits_immediately(self):
        sim, package, nic, driver, _ = make_node()
        seen = []
        driver.icr_hooks.append(seen.append)
        nic.post_interrupt_now(ICR.IT_HIGH)
        sim.run()
        assert seen and seen[0] & ICR.IT_HIGH
        # Only hardirq-handler cycles elapsed, no moderation wait.
        assert sim.now < 5 * US
