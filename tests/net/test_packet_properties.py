"""Property-based tests for framing arithmetic."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import HEADER_BYTES, MSS, MTU, segments_for, wire_bytes_for

payloads = st.integers(min_value=0, max_value=10_000_000)


@given(payload=payloads)
@settings(max_examples=200, deadline=None)
def test_segments_cover_payload_exactly(payload):
    n = segments_for(payload)
    assert n >= 1
    assert n * MSS >= payload
    if payload > 0:
        assert (n - 1) * MSS < payload


@given(payload=payloads)
@settings(max_examples=200, deadline=None)
def test_wire_bytes_accounts_headers_per_segment(payload):
    assert wire_bytes_for(payload) == payload + segments_for(payload) * HEADER_BYTES


@given(a=payloads, b=payloads)
@settings(max_examples=100, deadline=None)
def test_segments_monotone_in_payload(a, b):
    if a <= b:
        assert segments_for(a) <= segments_for(b)
    else:
        assert segments_for(a) >= segments_for(b)


@given(payload=st.integers(min_value=1, max_value=MSS))
@settings(max_examples=50, deadline=None)
def test_single_mss_payload_is_one_segment(payload):
    assert segments_for(payload) == 1
    # One full frame never exceeds MTU + Ethernet overhead.
    assert wire_bytes_for(payload) <= MTU + 14
