"""Tests for frames and protocol helpers."""

import pytest

from repro.net import (
    HEADER_BYTES,
    MSS,
    MTU,
    Frame,
    make_http_request,
    make_memcached_request,
    make_response,
    segments_for,
    wire_bytes_for,
)


class TestFraming:
    def test_header_offset_matches_paper(self):
        # Payload starts at the 66th byte of a received TCP packet (S4.1).
        assert HEADER_BYTES == 66

    def test_small_payload_single_segment(self):
        assert segments_for(100) == 1
        assert segments_for(MSS) == 1

    def test_large_payload_segments(self):
        assert segments_for(MSS + 1) == 2
        assert segments_for(10 * MSS) == 10

    def test_zero_payload_still_one_segment(self):
        assert segments_for(0) == 1

    def test_wire_bytes_adds_headers_per_segment(self):
        assert wire_bytes_for(100) == 100 + HEADER_BYTES
        assert wire_bytes_for(2 * MSS) == 2 * MSS + 2 * HEADER_BYTES

    def test_mss_consistent_with_mtu(self):
        # An MSS-sized payload plus IP/TCP headers fits the MTU.
        assert MSS + (HEADER_BYTES - 14) == MTU


class TestFrame:
    def test_properties(self):
        frame = Frame("a", "b", payload_bytes=3000, kind="response")
        assert frame.n_segments == segments_for(3000)
        assert frame.wire_bytes == wire_bytes_for(3000)
        assert not frame.is_single_packet

    def test_frame_ids_unique(self):
        a = Frame("a", "b", 10)
        b = Frame("a", "b", 10)
        assert a.frame_id != b.frame_id

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            Frame("a", "b", -1)


class TestProtocolHelpers:
    def test_http_request_prefix_is_method(self):
        frame = make_http_request("client", "server", method="GET")
        assert frame.payload_prefix.startswith(b"GET ")
        assert frame.kind == "request"
        assert frame.is_single_packet

    def test_http_put_prefix(self):
        frame = make_http_request("c", "s", method="PUT", url="/page")
        assert frame.payload_prefix.startswith(b"PUT ")

    def test_memcached_get_prefix(self):
        frame = make_memcached_request("c", "s", command="get", key="user:17")
        assert frame.payload_prefix.startswith(b"get ")
        assert frame.is_single_packet

    def test_memcached_set_prefix(self):
        frame = make_memcached_request("c", "s", command="set", key="k")
        assert frame.payload_prefix.startswith(b"set ")

    def test_response_carries_req_id(self):
        frame = make_response("s", "c", payload_bytes=8192, req_id=42)
        assert frame.req_id == 42
        assert frame.kind == "response"
        assert frame.n_segments > 1
