"""Property-based tests for RSS steering on the multi-queue NIC."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.multiqueue import MultiQueueNIC
from repro.net.packet import Frame
from repro.sim import Simulator

flow_names = st.text(
    alphabet=st.characters(min_codepoint=48, max_codepoint=122),
    min_size=1,
    max_size=12,
)


@given(src=flow_names, n_queues=st.integers(min_value=1, max_value=16))
@settings(max_examples=100, deadline=None)
def test_steering_is_deterministic_per_flow(src, n_queues):
    nic = MultiQueueNIC(Simulator(), n_queues=n_queues)
    frame_a = Frame(src, "server", payload_bytes=100, kind="request")
    frame_b = Frame(src, "server", payload_bytes=5_000, kind="request")
    assert nic.queue_for(frame_a) is nic.queue_for(frame_b)


@given(srcs=st.lists(flow_names, min_size=32, max_size=64, unique=True))
@settings(max_examples=30, deadline=None)
def test_many_flows_spread_over_queues(srcs):
    nic = MultiQueueNIC(Simulator(), n_queues=4)
    queues = {
        nic.queue_for(Frame(src, "server", payload_bytes=10)).queue_id
        for src in srcs
    }
    # 32+ distinct flows through CRC32 must touch at least half the queues.
    assert len(queues) >= 2


@given(
    srcs=st.lists(flow_names, min_size=1, max_size=40),
    n_queues=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=50, deadline=None)
def test_every_frame_lands_in_exactly_one_ring(srcs, n_queues):
    sim = Simulator()
    nic = MultiQueueNIC(sim, n_queues=n_queues)
    for src in srcs:
        nic.receive_frame(Frame(src, "server", payload_bytes=64, kind="request"))
    sim.run()
    assert sum(q.rx_pending for q in nic.queues) == len(srcs)
    assert nic.rx_frames == len(srcs)
