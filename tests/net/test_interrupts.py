"""Tests for the ICR register and interrupt moderation timers."""

from repro.net import ICR, InterruptModerator, ModerationConfig
from repro.sim import Simulator
from repro.sim.units import US


class TestICR:
    def test_set_and_read_clear(self):
        icr = ICR()
        icr.set(ICR.IT_RX)
        icr.set(ICR.IT_HIGH)
        assert icr.peek() == ICR.IT_RX | ICR.IT_HIGH
        assert icr.read_and_clear() == ICR.IT_RX | ICR.IT_HIGH
        assert icr.peek() == 0

    def test_bits_distinct(self):
        bits = [ICR.IT_RX, ICR.IT_TX, ICR.IT_HIGH, ICR.IT_LOW]
        assert len(set(bits)) == 4
        for a in bits:
            for b in bits:
                if a is not b:
                    assert a & b == 0

    def test_describe(self):
        assert ICR.describe(ICR.IT_RX | ICR.IT_HIGH) == "IT_RX|IT_HIGH"
        assert ICR.describe(0) == "0"


def make_moderator(pitt=25 * US, mitt=100 * US, aitt=200 * US):
    sim = Simulator()
    fires = []
    mod = InterruptModerator(
        sim, ModerationConfig(pitt_ns=pitt, mitt_ns=mitt, aitt_ns=aitt),
        lambda: fires.append(sim.now),
    )
    return sim, mod, fires


class TestInterruptModerator:
    def test_lone_packet_fires_after_pitt(self):
        sim, mod, fires = make_moderator()
        mod.notify_event()
        sim.run()
        assert fires == [25 * US]

    def test_burst_coalesces_into_one_interrupt(self):
        sim, mod, fires = make_moderator()
        for t in range(0, 20_000, 2_000):  # 10 packets over 20 us
            sim.schedule_at(t, mod.notify_event)
        sim.run()
        assert fires == [25 * US]

    def test_mitt_enforces_minimum_gap(self):
        sim, mod, fires = make_moderator()
        mod.notify_event()
        sim.schedule_at(30 * US, mod.notify_event)  # just after first fire
        sim.run()
        assert fires[0] == 25 * US
        assert fires[1] == 125 * US  # last_fire + mitt

    def test_sparse_traffic_not_penalized_by_mitt(self):
        sim, mod, fires = make_moderator()
        mod.notify_event()
        sim.schedule_at(1_000 * US, mod.notify_event)
        sim.run()
        assert fires == [25 * US, 1_025 * US]

    def test_aitt_caps_total_wait(self):
        # With a huge MITT, the earliest pending event still fires by AITT.
        sim, mod, fires = make_moderator(mitt=10_000 * US, aitt=200 * US)
        mod.notify_event()
        sim.run()
        assert fires == [25 * US]  # first fire unconstrained
        sim2, mod2, fires2 = make_moderator(mitt=10_000 * US, aitt=200 * US)
        mod2.notify_event()
        sim2.schedule_at(50 * US, mod2.notify_event)
        sim2.run()
        # Second event would wait until 10_025 us under MITT alone; AITT
        # caps it at first_pending (50us) + 200us.
        assert fires2[1] == 250 * US

    def test_force_fire_now_bypasses_moderation(self):
        sim, mod, fires = make_moderator()
        mod.notify_event()
        sim.schedule_at(5 * US, mod.force_fire_now)
        sim.run()
        assert fires[0] == 5 * US
        assert len(fires) == 1  # the scheduled PITT fire was cancelled

    def test_interrupts_posted_counter(self):
        sim, mod, fires = make_moderator()
        mod.notify_event()
        sim.run()
        assert mod.interrupts_posted == 1

    def test_ns_since_last_interrupt(self):
        sim, mod, fires = make_moderator()
        mod.notify_event()
        sim.run()
        assert mod.ns_since_last_interrupt() == sim.now - 25 * US
