"""Tests for the vectorized (bulk) rx datapath: ``LinkPort.send_vector``
through ``Switch.receive_burst`` into ``NIC.receive_burst``.

The contract under test: a whole burst handed to the datapath in one
Python-level call is delivered with exactly the timestamps and ordering
of the equivalent per-frame scalar sends.
"""

import pytest

from repro.net import NIC, Frame, Link, make_http_request
from repro.net.switch import Switch
from repro.sim import Simulator
from repro.sim.units import US, gbps


class Sink:
    """Scalar-only endpoint: records (time, frame) per delivery."""

    def __init__(self, name, sim):
        self.name = name
        self.sim = sim
        self.received = []

    def receive_frame(self, frame):
        self.received.append((self.sim.now, frame))


class BurstSink(Sink):
    """Endpoint advertising receive_burst: records the vector calls too."""

    def __init__(self, name, sim):
        super().__init__(name, sim)
        self.bursts = []

    def receive_burst(self, frames, times):
        self.bursts.append((list(times), list(frames)))


def make_link(sink_cls=Sink):
    sim = Simulator()
    link = Link(sim, bandwidth_bps=gbps(10), latency_ns=1 * US)
    a, b = Sink("a", sim), sink_cls("b", sim)
    link.attach(a, b)
    return sim, link, a, b


def frames_named(n, src="a", dst="b"):
    return [Frame(src, dst, payload_bytes=1250 - 66) for _ in range(n)]


class TestSendVector:
    def test_matches_scalar_delivery_times(self):
        # Scalar reference: one event per send.
        sim_s, link_s, a_s, b_s = make_link()
        port_s = link_s.endpoint_port(a_s)
        times = [0, 100, 5_000]
        for t, frame in zip(times, frames_named(3)):
            sim_s.schedule_at(t, port_s.send, frame)
        sim_s.run()

        sim_v, link_v, a_v, b_v = make_link()
        link_v.endpoint_port(a_v).send_vector(times, frames_named(3))
        sim_v.run()

        assert [t for t, _ in b_v.received] == [t for t, _ in b_s.received]

    def test_fifo_serialization_within_burst(self):
        sim, link, a, b = make_link()
        frames = frames_named(3)
        # All offered at t=0: each 1250-wire-byte frame takes 1 us on the
        # wire, so deliveries land at 2, 3, 4 us (1 us propagation).
        link.endpoint_port(a).send_vector([0, 0, 0], frames)
        sim.run()
        assert [t for t, _ in b.received] == [2 * US, 3 * US, 4 * US]
        assert [f.frame_id for _, f in b.received] == [
            f.frame_id for f in frames
        ]

    def test_burst_capable_sink_gets_one_call(self):
        sim, link, a, b = make_link(sink_cls=BurstSink)
        link.endpoint_port(a).send_vector([0, 0], frames_named(2))
        sim.run()
        assert len(b.bursts) == 1
        times, frames = b.bursts[0]
        assert times == [2 * US, 3 * US]
        assert b.received == []  # vector handoff, no scalar calls

    def test_counters_match_scalar_path(self):
        sim, link, a, b = make_link()
        port = link.endpoint_port(a)
        port.send_vector([0, 0], frames_named(2))
        sim.run()
        assert port.bytes_carried == 2 * 1250

    def test_scalar_send_during_vector_flight_raises(self):
        sim, link, a, b = make_link()
        port = link.endpoint_port(a)
        port.send_vector([0, 0], frames_named(2))

        def late_scalar():
            with pytest.raises(RuntimeError):
                port.send(Frame("a", "b", payload_bytes=100))

        sim.schedule_at(1 * US, late_scalar)  # wire still busy with burst
        sim.run()

    def test_vector_send_while_scalar_busy_raises(self):
        sim, link, a, b = make_link()
        port = link.endpoint_port(a)
        port.send(Frame("a", "b", payload_bytes=1250 - 66))
        with pytest.raises(RuntimeError):
            port.send_vector([0], frames_named(1))

    def test_length_mismatch_raises(self):
        sim, link, a, b = make_link()
        with pytest.raises(ValueError):
            link.endpoint_port(a).send_vector([0, 100], frames_named(3))


class TestSwitchBurst:
    def build(self):
        sim = Simulator()
        switch = Switch(sim)
        sinks = {}
        for name in ("x", "y"):
            sink = Sink(name, sim)
            link = Link(sim, bandwidth_bps=gbps(10), latency_ns=1 * US)
            link.attach(sink, switch)
            switch.attach_link(link, name)
            sinks[name] = sink
        return sim, switch, sinks

    def test_burst_demuxed_per_destination(self):
        sim, switch, sinks = self.build()
        frames = [
            Frame("c", "x", payload_bytes=100),
            Frame("c", "y", payload_bytes=100),
            Frame("c", "x", payload_bytes=100),
        ]
        sim.schedule_at(0, switch.receive_burst, frames, [0, 0, 10])
        sim.run()
        assert len(sinks["x"].received) == 2
        assert len(sinks["y"].received) == 1
        assert switch.frames_forwarded == 3

    def test_unknown_destination_counted_dropped(self):
        sim, switch, sinks = self.build()
        frames = [Frame("c", "nowhere", payload_bytes=100)]
        sim.schedule_at(0, switch.receive_burst, frames, [0])
        sim.run()
        assert switch.frames_dropped == 1
        assert switch.frames_forwarded == 0


class TestNICBurst:
    def run_nic(self, bulk):
        from repro.net import NICDriver
        from repro.cpu import ProcessorConfig
        from repro.oskernel import IRQController, NetStackCosts

        sim = Simulator()
        package = ProcessorConfig(n_cores=2).build_package(sim)
        irq = IRQController(sim, package)
        nic = NIC(sim)
        driver = NICDriver(sim, nic, irq, NetStackCosts())
        delivered = []
        driver.packet_sink = lambda pkt: delivered.append((sim.now, pkt.req_id))
        frames = [
            make_http_request("c", "s", req_id=i) for i in range(20)
        ]
        times = [1000 + 500 * i for i in range(20)]
        if bulk:
            sim.schedule_at(0, nic.receive_burst, frames, times)
        else:
            for t, frame in zip(times, frames):
                sim.schedule_at(t, nic.receive_frame, frame)
        sim.run()
        return delivered, nic

    def test_burst_parity_with_scalar_rx(self):
        scalar, nic_s = self.run_nic(bulk=False)
        bulk, nic_b = self.run_nic(bulk=True)
        assert bulk == scalar
        assert nic_b.rx_frames == nic_s.rx_frames
