"""Property-based tests for latency statistics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import LatencyStats

samples = st.lists(
    st.floats(min_value=0, max_value=1e12, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=500,
)


@given(values=samples)
@settings(max_examples=100, deadline=None)
def test_percentiles_ordered(values):
    stats = LatencyStats.from_values(values)
    assert stats.p50_ns <= stats.p90_ns <= stats.p95_ns <= stats.p99_ns <= stats.max_ns


@given(values=samples)
@settings(max_examples=100, deadline=None)
def test_percentiles_bounded_by_data(values):
    stats = LatencyStats.from_values(values)
    # A few ulps of slack: float summation can land the mean (and the
    # interpolated percentiles) infinitesimally outside [min, max].
    slack = max(1e-9, abs(max(values)) * 1e-12)
    assert min(values) - slack <= stats.p50_ns
    assert stats.max_ns == max(values)
    assert min(values) - slack <= stats.mean_ns <= max(values) + slack


@given(values=samples, scale=st.floats(min_value=0.1, max_value=100, allow_nan=False))
@settings(max_examples=50, deadline=None)
def test_percentiles_scale_linearly(values, scale):
    a = LatencyStats.from_values(values)
    b = LatencyStats.from_values([v * scale for v in values])
    assert abs(b.p95_ns - a.p95_ns * scale) <= max(1e-6, abs(a.p95_ns * scale)) * 1e-9 + 1e-6


@given(values=samples, sla=st.integers(min_value=1, max_value=10**12))
@settings(max_examples=50, deadline=None)
def test_meets_sla_consistent_with_p95(values, sla):
    stats = LatencyStats.from_values(values)
    assert stats.meets_sla(sla) == (stats.p95_ns <= sla)
