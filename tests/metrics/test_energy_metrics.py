"""Tests for energy windowing."""

import pytest

from repro.cpu import EnergyReport
from repro.metrics import average_power_w, energy_delta


class TestEnergyDelta:
    def test_window_subtraction(self):
        start = EnergyReport(
            energy_j=1.0,
            residency_ns={"run": 100, "C6": 50},
            energy_by_mode_j={"run": 0.9, "C6": 0.1},
        )
        end = EnergyReport(
            energy_j=3.5,
            residency_ns={"run": 400, "C6": 50, "C1": 25},
            energy_by_mode_j={"run": 3.2, "C6": 0.1, "C1": 0.2},
        )
        delta = energy_delta(start, end)
        assert delta.energy_j == pytest.approx(2.5)
        assert delta.residency_ns == {"run": 300, "C1": 25}
        assert delta.energy_by_mode_j == {
            "run": pytest.approx(2.3), "C1": pytest.approx(0.2)
        }

    def test_zero_window(self):
        report = EnergyReport(energy_j=2.0, residency_ns={"run": 10})
        delta = energy_delta(report, report)
        assert delta.energy_j == 0.0
        assert delta.residency_ns == {}


class TestAveragePower:
    def test_average(self):
        report = EnergyReport(energy_j=5.0)
        assert average_power_w(report, 100_000_000) == pytest.approx(50.0)

    def test_rejects_zero_window(self):
        with pytest.raises(ValueError):
            average_power_w(EnergyReport(), 0)
