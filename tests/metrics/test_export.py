"""Tests for CSV trace export."""

import csv
import os

from repro.metrics.export import (
    export_counter_channel,
    export_event_channel,
    export_figure4_bundle,
)
from repro.sim import TraceRecorder
from repro.sim.units import MS


class TestEventExport:
    def test_roundtrip(self, tmp_path):
        trace = TraceRecorder()
        ch = trace.event_channel("cpu.freq_ghz")
        ch.record(0, 3.1)
        ch.record(5 * MS, 0.8)
        path = os.path.join(tmp_path, "freq.csv")
        rows = export_event_channel(trace, "cpu.freq_ghz", path)
        assert rows == 2
        with open(path) as fh:
            data = list(csv.reader(fh))
        assert data[0] == ["time_ns", "value"]
        assert data[1] == ["0", "3.1"]
        assert data[2] == [str(5 * MS), "0.8"]

    def test_empty_channel(self, tmp_path):
        trace = TraceRecorder()
        path = os.path.join(tmp_path, "empty.csv")
        assert export_event_channel(trace, "nothing", path) == 0
        with open(path) as fh:
            assert len(list(csv.reader(fh))) == 1  # header only


class TestCounterExport:
    def test_binned_rows(self, tmp_path):
        trace = TraceRecorder()
        ch = trace.counter_channel("rx")
        ch.add(100, 1000.0)
        ch.add(MS + 5, 500.0)
        path = os.path.join(tmp_path, "rx.csv")
        rows = export_counter_channel(trace, "rx", path, 0, 2 * MS, MS)
        assert rows == 2
        with open(path) as fh:
            data = list(csv.reader(fh))
        assert float(data[1][1]) == 1000.0
        assert float(data[2][1]) == 500.0


class TestBundle:
    def test_figure4_bundle_from_real_run(self, tmp_path):
        from repro import ExperimentConfig, run_experiment

        result = run_experiment(
            ExperimentConfig(
                app="apache", policy="ond.idle", target_rps=24_000,
                collect_traces=True,
                warmup_ns=5 * MS, measure_ns=30 * MS, drain_ns=20 * MS,
            )
        )
        paths = export_figure4_bundle(
            result.trace, str(tmp_path), 5 * MS, 35 * MS, MS
        )
        assert len(paths) >= 4 + 4  # 4 series + 4 core channels
        for path in paths:
            assert os.path.exists(path)
        # The rx series carries real traffic.
        rx_path = next(p for p in paths if "rx_bytes" in p)
        with open(rx_path) as fh:
            total = sum(float(row[1]) for row in list(csv.reader(fh))[1:])
        assert total > 0
