"""Tests for time-series sampling helpers."""

import pytest

from repro.cpu import Job, ProcessorConfig
from repro.metrics import UtilizationSampler, bandwidth_series_mbps, normalized_series
from repro.sim import Simulator, TraceRecorder
from repro.sim.units import MS


class TestUtilizationSampler:
    def test_samples_busy_fraction(self):
        sim = Simulator()
        package = ProcessorConfig(n_cores=2).build_package(sim)
        trace = TraceRecorder()
        sampler = UtilizationSampler(sim, package, trace, bin_ns=MS)
        sampler.start()
        # Core 0 busy for exactly half of the first bin.
        package.cores[0].dispatch(Job(3.1e9 * 500e-6))
        sim.run(until=2 * MS)
        channel = trace.event_channel("cpu.util")
        # Mean across 2 cores: core0 50%, core1 0% -> 25%.
        assert channel.values[0] == pytest.approx(0.25, abs=0.01)
        assert channel.values[1] == pytest.approx(0.0, abs=0.01)

    def test_stop(self):
        sim = Simulator()
        package = ProcessorConfig(n_cores=1).build_package(sim)
        trace = TraceRecorder()
        sampler = UtilizationSampler(sim, package, trace, bin_ns=MS)
        sampler.start()
        sim.schedule_at(int(2.5 * MS), sampler.stop)
        sim.run(until=10 * MS)
        assert len(trace.event_channel("cpu.util")) == 2

    def test_start_idempotent(self):
        sim = Simulator()
        package = ProcessorConfig(n_cores=1).build_package(sim)
        trace = TraceRecorder()
        sampler = UtilizationSampler(sim, package, trace, bin_ns=MS)
        sampler.start()
        sampler.start()
        sim.run(until=MS)
        assert len(trace.event_channel("cpu.util")) == 1


class TestBandwidthSeries:
    def test_bytes_to_mbps(self):
        trace = TraceRecorder()
        counter = trace.counter_channel("rx")
        counter.add(100, 125_000.0)  # 125 KB in a 1 ms bin = 1 Gb/s
        series = bandwidth_series_mbps(trace, "rx", 0, MS, MS)
        assert series == [(0, pytest.approx(1000.0))]


class TestNormalizedSeries:
    def test_normalizes_to_peak(self):
        series = [(0, 2.0), (1, 8.0), (2, 4.0)]
        assert normalized_series(series) == [(0, 0.25), (1, 1.0), (2, 0.5)]

    def test_all_zero_series(self):
        assert normalized_series([(0, 0.0), (1, 0.0)]) == [(0, 0.0), (1, 0.0)]

    def test_empty(self):
        assert normalized_series([]) == []
