"""Tests for time-series sampling helpers."""

import pytest

from repro.cpu import Job, ProcessorConfig
from repro.metrics import UtilizationSampler, bandwidth_series_mbps, normalized_series
from repro.sim import Simulator, TraceRecorder
from repro.sim.units import MS


def _sampler(sim, package, trace, bin_ns=MS, channel="cpu.util"):
    with pytest.warns(DeprecationWarning, match="TimeSeriesRecorder"):
        return UtilizationSampler(sim, package, trace, bin_ns=bin_ns, channel=channel)


class _ReferenceSampler:
    """The original (pre-recorder) UtilizationSampler, verbatim, as the
    parity oracle for the deprecated wrapper."""

    def __init__(self, sim, package, trace, bin_ns=1 * MS, channel="cpu.util"):
        self._sim = sim
        self._package = package
        self._channel = trace.event_channel(channel)
        self.bin_ns = bin_ns
        self._last_busy = package.busy_ns_per_core()
        self._running = False

    def start(self):
        if self._running:
            return
        self._running = True
        self._last_busy = self._package.busy_ns_per_core()
        self._sim.schedule(self.bin_ns, self._sample)

    def _sample(self):
        if not self._running:
            return
        busy = self._package.busy_ns_per_core()
        deltas = [b - last for b, last in zip(busy, self._last_busy)]
        self._last_busy = busy
        mean_util = sum(deltas) / (len(deltas) * self.bin_ns)
        self._channel.record(self._sim.now, min(1.0, mean_util))
        self._sim.schedule(self.bin_ns, self._sample)


class TestUtilizationSampler:
    def test_construction_warns_deprecated(self):
        sim = Simulator()
        package = ProcessorConfig(n_cores=1).build_package(sim)
        with pytest.warns(DeprecationWarning, match="build_server_recorder"):
            UtilizationSampler(sim, package, TraceRecorder(), bin_ns=MS)

    def test_deprecation_contract_pinned(self):
        # Pin the shim's full warning contract: exact category (a plain
        # UserWarning would slip through `-W error::DeprecationWarning`
        # gates), a message naming both the replacement class and the
        # factory to migrate to, and stacklevel=2 so the warning points
        # at the caller's line, not the shim's.
        import warnings

        sim = Simulator()
        package = ProcessorConfig(n_cores=1).build_package(sim)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            UtilizationSampler(sim, package, TraceRecorder(), bin_ns=MS)
        assert len(caught) == 1
        warning = caught[0]
        assert warning.category is DeprecationWarning
        message = str(warning.message)
        assert "UtilizationSampler is deprecated" in message
        assert "TimeSeriesRecorder" in message
        assert "repro.cluster.recording.build_server_recorder" in message
        assert warning.filename == __file__

    def test_samples_busy_fraction(self):
        sim = Simulator()
        package = ProcessorConfig(n_cores=2).build_package(sim)
        trace = TraceRecorder()
        sampler = _sampler(sim, package, trace, bin_ns=MS)
        sampler.start()
        # Core 0 busy for exactly half of the first bin.
        package.cores[0].dispatch(Job(3.1e9 * 500e-6))
        sim.run(until=2 * MS)
        channel = trace.event_channel("cpu.util")
        # Mean across 2 cores: core0 50%, core1 0% -> 25%.
        assert channel.values[0] == pytest.approx(0.25, abs=0.01)
        assert channel.values[1] == pytest.approx(0.0, abs=0.01)

    def test_stop(self):
        sim = Simulator()
        package = ProcessorConfig(n_cores=1).build_package(sim)
        trace = TraceRecorder()
        sampler = _sampler(sim, package, trace, bin_ns=MS)
        sampler.start()
        sim.schedule_at(int(2.5 * MS), sampler.stop)
        sim.run(until=10 * MS)
        assert len(trace.event_channel("cpu.util")) == 2

    def test_start_idempotent(self):
        sim = Simulator()
        package = ProcessorConfig(n_cores=1).build_package(sim)
        trace = TraceRecorder()
        sampler = _sampler(sim, package, trace, bin_ns=MS)
        sampler.start()
        sampler.start()
        sim.run(until=MS)
        assert len(trace.event_channel("cpu.util")) == 1

    def test_restart_after_stop_does_not_double_schedule(self):
        # Regression: the original left its queued callback alive across
        # stop(), so stop() + start() before the callback fired stacked a
        # second sampling chain and produced duplicate bins forever.
        sim = Simulator()
        package = ProcessorConfig(n_cores=1).build_package(sim)
        trace = TraceRecorder()
        sampler = _sampler(sim, package, trace, bin_ns=MS)
        sampler.start()
        sim.run(until=int(1.5 * MS))
        sampler.stop()
        sampler.start()  # first chain's next tick (t=2ms) still queued
        sim.run(until=5 * MS)
        times = list(trace.event_channel("cpu.util").times)
        assert times == sorted(set(times)), "duplicate bins: two chains"
        assert times == [MS, int(2.5 * MS), int(3.5 * MS), int(4.5 * MS)]

    def test_parity_with_original_implementation(self):
        # Wrapper (channel A) and the verbatim original math (channel B)
        # driven by the same simulation must bin identically.
        sim = Simulator()
        package = ProcessorConfig(n_cores=2).build_package(sim)
        trace = TraceRecorder()
        wrapper = _sampler(sim, package, trace, bin_ns=MS, channel="a.util")
        reference = _ReferenceSampler(sim, package, trace, bin_ns=MS, channel="b.util")
        wrapper.start()
        reference.start()
        # Staggered work so bins land at varied fractions.
        for i, us in enumerate((200, 750, 0, 1000, 333)):
            if us:
                sim.schedule_at(
                    i * MS + 100_000,
                    (lambda core, n: lambda: core.dispatch(Job(3.1e9 * n * 1e-6)))(
                        package.cores[i % 2], us * 0.8
                    ),
                )
        sim.run(until=6 * MS)
        a = trace.event_channel("a.util")
        b = trace.event_channel("b.util")
        assert list(a.times) == list(b.times)
        assert list(a.values) == list(b.values)  # bit-identical bins


class TestBandwidthSeries:
    def test_bytes_to_mbps(self):
        trace = TraceRecorder()
        counter = trace.counter_channel("rx")
        counter.add(100, 125_000.0)  # 125 KB in a 1 ms bin = 1 Gb/s
        series = bandwidth_series_mbps(trace, "rx", 0, MS, MS)
        assert series == [(0, pytest.approx(1000.0))]


class TestNormalizedSeries:
    def test_normalizes_to_peak(self):
        series = [(0, 2.0), (1, 8.0), (2, 4.0)]
        assert normalized_series(series) == [(0, 0.25), (1, 1.0), (2, 0.5)]

    def test_all_zero_series(self):
        assert normalized_series([(0, 0.0), (1, 0.0)]) == [(0, 0.0), (1, 0.0)]

    def test_empty(self):
        assert normalized_series([]) == []
