"""Tests for latency statistics."""

import math

import pytest

from repro.metrics import LatencyStats


class TestLatencyStats:
    def test_percentiles_of_uniform_ramp(self):
        values = list(range(1, 101))  # 1..100
        stats = LatencyStats.from_values(values)
        assert stats.count == 100
        assert stats.p50_ns == pytest.approx(50.5)
        assert stats.p95_ns == pytest.approx(95.05)
        assert stats.max_ns == 100
        assert stats.mean_ns == pytest.approx(50.5)

    def test_percentile_canned_fast_path(self):
        stats = LatencyStats.from_values([1, 2, 3, 4])
        assert stats.percentile(50) == stats.p50_ns
        assert stats.percentile(90.0) == stats.p90_ns
        assert stats.percentile(95) == stats.p95_ns
        assert stats.percentile(99) == stats.p99_ns

    def test_percentile_arbitrary_from_sketch(self):
        import numpy as np

        values = list(range(1, 10_001))
        stats = LatencyStats.from_values(values)
        assert stats.sketch is not None
        for q in (75, 92.5, 99.9):
            assert stats.percentile(q) == pytest.approx(
                float(np.percentile(values, q)), rel=0.02
            )
        assert stats.percentile(100) == stats.max_ns

    def test_percentile_interpolates_without_sketch(self):
        # Records rebuilt from JSON carry no sketch: arbitrary quantiles
        # come from monotone interpolation over the canned anchors.
        stats = LatencyStats(
            count=100, mean_ns=50.0, p50_ns=50.0, p90_ns=90.0,
            p95_ns=95.0, p99_ns=99.0, max_ns=100.0,
        )
        assert stats.percentile(92.5) == pytest.approx(92.5)
        assert stats.percentile(99.5) == pytest.approx(99.5)
        assert stats.percentile(97.0) == pytest.approx(97.0)
        # Below the median everything clamps to p50 (the lower half of
        # the distribution is not retained in records).
        assert stats.percentile(10) == 50.0

    def test_percentile_rejects_out_of_range(self):
        stats = LatencyStats.from_values([1, 2, 3])
        with pytest.raises(ValueError):
            stats.percentile(101)
        with pytest.raises(ValueError):
            stats.percentile(-1)

    def test_percentile_empty_is_nan(self):
        stats = LatencyStats.from_values([])
        assert math.isnan(stats.percentile(75))

    def test_from_sketch_round_trip(self):
        from repro.analysis.sketch import StreamingSketch

        values = [float(v) for v in range(1, 2_001)]
        sketch = StreamingSketch()
        sketch.extend(values)
        stats = LatencyStats.from_sketch(sketch)
        exact = LatencyStats.from_values(values)
        assert stats.count == exact.count
        assert stats.mean_ns == pytest.approx(exact.mean_ns)
        assert stats.max_ns == exact.max_ns
        assert stats.p99_ns == pytest.approx(exact.p99_ns, rel=0.02)

    def test_sketch_excluded_from_equality(self):
        a = LatencyStats.from_values([1, 2, 3])
        b = LatencyStats(
            count=a.count, mean_ns=a.mean_ns, p50_ns=a.p50_ns,
            p90_ns=a.p90_ns, p95_ns=a.p95_ns, p99_ns=a.p99_ns,
            max_ns=a.max_ns,
        )
        assert a == b

    def test_empty_input_yields_nans(self):
        stats = LatencyStats.from_values([])
        assert stats.count == 0
        assert math.isnan(stats.p95_ns)
        assert not stats.meets_sla(10**9)

    def test_single_value(self):
        stats = LatencyStats.from_values([7_000_000])
        assert stats.p50_ns == stats.p99_ns == 7_000_000

    def test_normalized_to_sla(self):
        stats = LatencyStats.from_values([10_000_000] * 10)
        norm = stats.normalized_to(20_000_000)
        assert norm == {"p50": 0.5, "p90": 0.5, "p95": 0.5, "p99": 0.5}

    def test_normalized_rejects_bad_sla(self):
        stats = LatencyStats.from_values([1])
        with pytest.raises(ValueError):
            stats.normalized_to(0)

    def test_meets_sla_on_p95(self):
        # 95 values at 1 ms, 5 at 100 ms: p95 sits at the boundary.
        values = [1_000_000] * 95 + [100_000_000] * 5
        stats = LatencyStats.from_values(values)
        assert stats.meets_sla(50_000_000)
        assert not stats.meets_sla(1_000_000)

    def test_order_insensitive(self):
        import random

        values = list(range(1000))
        random.Random(0).shuffle(values)
        a = LatencyStats.from_values(values)
        b = LatencyStats.from_values(sorted(values))
        assert a.p95_ns == b.p95_ns
