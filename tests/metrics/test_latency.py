"""Tests for latency statistics."""

import math

import pytest

from repro.metrics import LatencyStats


class TestLatencyStats:
    def test_percentiles_of_uniform_ramp(self):
        values = list(range(1, 101))  # 1..100
        stats = LatencyStats.from_values(values)
        assert stats.count == 100
        assert stats.p50_ns == pytest.approx(50.5)
        assert stats.p95_ns == pytest.approx(95.05)
        assert stats.max_ns == 100
        assert stats.mean_ns == pytest.approx(50.5)

    def test_percentile_accessor(self):
        stats = LatencyStats.from_values([1, 2, 3, 4])
        assert stats.percentile(50) == stats.p50_ns
        with pytest.raises(KeyError):
            stats.percentile(42)

    def test_empty_input_yields_nans(self):
        stats = LatencyStats.from_values([])
        assert stats.count == 0
        assert math.isnan(stats.p95_ns)
        assert not stats.meets_sla(10**9)

    def test_single_value(self):
        stats = LatencyStats.from_values([7_000_000])
        assert stats.p50_ns == stats.p99_ns == 7_000_000

    def test_normalized_to_sla(self):
        stats = LatencyStats.from_values([10_000_000] * 10)
        norm = stats.normalized_to(20_000_000)
        assert norm == {"p50": 0.5, "p90": 0.5, "p95": 0.5, "p99": 0.5}

    def test_normalized_rejects_bad_sla(self):
        stats = LatencyStats.from_values([1])
        with pytest.raises(ValueError):
            stats.normalized_to(0)

    def test_meets_sla_on_p95(self):
        # 95 values at 1 ms, 5 at 100 ms: p95 sits at the boundary.
        values = [1_000_000] * 95 + [100_000_000] * 5
        stats = LatencyStats.from_values(values)
        assert stats.meets_sla(50_000_000)
        assert not stats.meets_sla(1_000_000)

    def test_order_insensitive(self):
        import random

        values = list(range(1000))
        random.Random(0).shuffle(values)
        a = LatencyStats.from_values(values)
        b = LatencyStats.from_values(sorted(values))
        assert a.p95_ns == b.p95_ns
