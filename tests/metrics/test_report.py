"""Tests for text report rendering."""

from repro.metrics import format_series, format_table, sparkline


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(["name", "value"], [["a", 1], ["longer", 2.5]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", "+"}
        assert len(lines) == 4
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # fixed width

    def test_title_prepended(self):
        text = format_table(["x"], [[1]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456], [float("nan")], [12345.6]])
        assert "0.123" in text
        assert "nan" in text
        assert "1.23e+04" in text


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert len(line) == 3
        assert len(set(line)) == 1

    def test_monotone_series_monotone_glyphs(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7, 8])
        assert list(line) == sorted(line)

    def test_resampling_to_width(self):
        line = sparkline(list(range(1000)), width=50)
        assert len(line) == 50


class TestFormatSeries:
    def test_includes_range(self):
        text = format_series("BW(Rx)", [(0, 1.0), (1, 3.0)])
        assert "BW(Rx)" in text
        assert "max=3" in text

    def test_empty_series(self):
        assert "(empty)" in format_series("x", [])
