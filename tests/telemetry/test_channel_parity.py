"""ChannelSink parity with the legacy TraceRecorder path, multi-node.

Before the telemetry layer, components wrote directly to a
``TraceRecorder``; today ``ensure_telemetry(None, trace)`` adapts the old
``trace=`` argument by attaching a :class:`ChannelSink`.  A run wired the
legacy way and a run wired with an explicit ``Telemetry`` + ChannelSink
must produce byte-identical channels — including with several server
nodes sharing one recorder.
"""

from repro.apps.client import OpenLoopClient, http_request_factory
from repro.cluster.node import ServerNode
from repro.net.link import Link
from repro.net.switch import Switch
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder
from repro.sim.units import MS, US, gbps
from repro.telemetry import ChannelSink, Telemetry

RUN_NS = 30 * MS


def run_two_server_cluster(legacy: bool) -> TraceRecorder:
    """Two servers + one client each behind a switch; returns the recorder.

    ``legacy=True`` passes the recorder via the old ``trace=`` argument
    (``ensure_telemetry`` adapts it); ``legacy=False`` wires an explicit
    ``Telemetry`` with a :class:`ChannelSink` attached up front.
    """
    sim = Simulator()
    rng = RngRegistry(7)
    recorder = TraceRecorder()
    switch = Switch(sim)
    for i in range(2):
        name = f"server{i}"
        if legacy:
            server = ServerNode(sim, name, "ond.idle", "apache", rng,
                                trace=recorder)
        else:
            telemetry = Telemetry()
            telemetry.add_sink(ChannelSink(recorder))
            server = ServerNode(sim, name, "ond.idle", "apache", rng,
                                telemetry=telemetry)
        link = Link(sim, gbps(10), 1 * US)
        link.attach(server, switch)
        server.attach_port(link.endpoint_port(server))
        switch.attach_link(link, name)

        client = OpenLoopClient(
            sim, f"client{i}", http_request_factory(f"client{i}", name),
            burst_size=50, burst_period_ns=10 * MS,
            jitter_rng=rng.stream(f"client{i}.jitter"), jitter_fraction=0.3,
        )
        client_link = Link(sim, gbps(10), 1 * US)
        client_link.attach(client, switch)
        client.attach_port(client_link.endpoint_port(client))
        switch.attach_link(client_link, client.name)
        client.start()

    sim.run(until=RUN_NS)
    return recorder


def channel_dump(recorder: TraceRecorder):
    events = {
        name: (ch.times, ch.values)
        for name, ch in recorder._events.items() if len(ch)
    }
    counters = {
        name: (ch.times, ch.amounts, ch.total)
        for name, ch in recorder._counters.items() if len(ch)
    }
    return events, counters


def test_legacy_trace_and_channel_sink_produce_identical_channels():
    legacy_events, legacy_counters = channel_dump(
        run_two_server_cluster(legacy=True)
    )
    new_events, new_counters = channel_dump(
        run_two_server_cluster(legacy=False)
    )
    # Both servers contributed channels, with traffic recorded.
    assert any(name.startswith("server0.") for name in legacy_counters)
    assert any(name.startswith("server1.") for name in legacy_counters)
    assert legacy_counters["server0.rx_bytes"][2] > 0
    # Bit-identical series, channel for channel.
    assert new_events == legacy_events
    assert new_counters == legacy_counters
