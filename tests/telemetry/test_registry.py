"""Tests for the stats registry: typed metrics, snapshots, diffs."""

import pytest

from repro.telemetry import Counter, Distribution, Gauge, StatsRegistry


class TestDeclaration:
    def test_counter_gauge_distribution_types(self):
        reg = StatsRegistry()
        assert isinstance(reg.counter("nic.rx.frames"), Counter)
        assert isinstance(reg.gauge("governor.ondemand.utilization"), Gauge)
        assert isinstance(reg.distribution("request.latency_ns"), Distribution)

    def test_declare_is_idempotent(self):
        reg = StatsRegistry()
        a = reg.counter("cpuidle.c6.entries")
        b = reg.counter("cpuidle.c6.entries")
        assert a is b

    def test_kind_mismatch_rejected(self):
        reg = StatsRegistry()
        reg.counter("ncap.classified.lc")
        with pytest.raises(TypeError):
            reg.gauge("ncap.classified.lc")

    def test_bad_names_rejected(self):
        reg = StatsRegistry()
        for bad in ("", ".", "a..b", ".a", "a.", "has space"):
            with pytest.raises(ValueError):
                reg.counter(bad)

    def test_contains_and_names(self):
        reg = StatsRegistry()
        reg.counter("nic.rx.frames")
        reg.counter("nic.tx.frames")
        assert "nic.rx.frames" in reg
        assert "irq.hardirqs" not in reg
        assert reg.names() == ["nic.rx.frames", "nic.tx.frames"]


class TestValues:
    def test_counter_inc(self):
        c = StatsRegistry().counter("c")
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_gauge_set(self):
        g = StatsRegistry().gauge("g")
        g.set(0.75)
        g.set(0.25)
        assert g.value == 0.25

    def test_distribution_observe(self):
        d = StatsRegistry().distribution("d")
        for v in (1.0, 2.0, 3.0):
            d.observe(v)
        assert d.count == 3
        assert d.total == 6.0
        assert d.min == 1.0
        assert d.max == 3.0
        assert d.mean == 2.0


class TestSnapshot:
    def test_flat_dict_with_distribution_expansion(self):
        reg = StatsRegistry()
        reg.counter("nic.rx.frames").inc(5)
        reg.gauge("util").set(0.5)
        d = reg.distribution("lat")
        d.observe(10.0)
        d.observe(20.0)
        snap = reg.snapshot()
        assert snap["nic.rx.frames"] == 5
        assert snap["util"] == 0.5
        assert snap["lat.count"] == 2
        assert snap["lat.total"] == 30.0
        assert snap["lat.mean"] == 15.0
        assert snap["lat.min"] == 10.0
        assert snap["lat.max"] == 20.0

    def test_snapshot_is_detached(self):
        reg = StatsRegistry()
        c = reg.counter("c")
        snap = reg.snapshot()
        c.inc()
        assert snap["c"] == 0

    def test_subtree(self):
        reg = StatsRegistry()
        reg.counter("nic.rx.frames").inc(1)
        reg.counter("nic.tx.frames").inc(2)
        reg.counter("irq.hardirqs").inc(3)
        sub = reg.subtree("nic")
        assert sub == {"nic.rx.frames": 1, "nic.tx.frames": 2}

    def test_diff(self):
        reg = StatsRegistry()
        c = reg.counter("c")
        before = reg.snapshot()
        c.inc(10)
        after = reg.snapshot()
        assert StatsRegistry.diff(before, after) == {"c": 10}


class TestScope:
    def test_scope_prefixes_names(self):
        reg = StatsRegistry()
        scope = reg.scope("nic.q3")
        scope.counter("rx.frames").inc(7)
        assert reg.value("nic.q3.rx.frames") == 7

    def test_scoped_instances_stay_separate(self):
        reg = StatsRegistry()
        a = reg.scope("ncap.q0").counter("it_high.posts")
        b = reg.scope("ncap.q1").counter("it_high.posts")
        a.inc()
        assert reg.value("ncap.q0.it_high.posts") == 1
        assert reg.value("ncap.q1.it_high.posts") == 0
        assert b.value == 0
