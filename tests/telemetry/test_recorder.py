"""Flight-recorder tests: ring decimation, lifecycle, cluster wiring."""

import pytest

from repro.cluster.simulation import ExperimentConfig, run_experiment
from repro.harness import Runner
from repro.sim import Simulator
from repro.sim.units import MS
from repro.telemetry import (
    RecorderConfig,
    Telemetry,
    TimeseriesBundle,
    TimeSeriesRecorder,
    resolve_recorder_config,
)
from repro.telemetry.recorder import SeriesBuffer


class TestSeriesBuffer:
    def test_retains_on_stride_grid(self):
        buffer = SeriesBuffer("s", "gauge", capacity=4)
        for i in range(8):
            buffer.append(i * 10, float(i))
        # Filled at 4 samples -> decimated to evens, stride 2; later
        # samples retained only on the doubled grid.
        assert buffer.stride in (2, 4)
        times = buffer.times
        spacing = {b - a for a, b in zip(times, times[1:])}
        assert len(spacing) == 1  # uniform grid survives decimation

    def test_origin_sample_always_survives(self):
        buffer = SeriesBuffer("s", "gauge", capacity=4)
        for i in range(64):
            buffer.append(i, float(i))
        assert buffer.times[0] == 0

    def test_capacity_floor(self):
        with pytest.raises(ValueError):
            SeriesBuffer("s", "gauge", capacity=2)


class TestRecorderLifecycle:
    def _recorder(self, sim, interval_ns=MS):
        recorder = TimeSeriesRecorder(sim, interval_ns=interval_ns)
        ticks = []
        recorder.add_source("t", lambda: float(len(ticks)), tap=lambda t, v: ticks.append(t))
        return recorder, ticks

    def test_start_idempotent(self):
        sim = Simulator()
        recorder, ticks = self._recorder(sim)
        recorder.start()
        recorder.start()
        sim.run(until=MS)
        assert ticks == [MS]

    def test_restart_after_stop_never_double_schedules(self):
        # Regression for the UtilizationSampler bug: stop() left its
        # queued callback alive, so a start() before it fired stacked a
        # second sampling chain (duplicate samples per interval).
        sim = Simulator()
        recorder, ticks = self._recorder(sim)
        recorder.start()
        sim.run(until=int(1.5 * MS))
        recorder.stop()
        recorder.start()  # pending event from the first chain not yet due
        sim.run(until=4 * MS)
        assert ticks == sorted(set(ticks)), "duplicate samples: two chains"
        # Restarted chain ticks at 1.5+1, 1.5+2, ... ms.
        assert ticks == [MS, int(2.5 * MS), int(3.5 * MS)]

    def test_stop_cancels_pending(self):
        sim = Simulator()
        recorder, ticks = self._recorder(sim)
        recorder.start()
        sim.schedule_at(int(2.5 * MS), recorder.stop)
        sim.run(until=10 * MS)
        assert ticks == [MS, 2 * MS]

    def test_duplicate_series_rejected(self):
        recorder = TimeSeriesRecorder(Simulator())
        recorder.add_source("x", lambda: 0.0)
        with pytest.raises(ValueError, match="already declared"):
            recorder.add_source("x", lambda: 1.0)

    def test_registry_series_need_telemetry(self):
        recorder = TimeSeriesRecorder(Simulator())
        with pytest.raises(ValueError, match="Telemetry"):
            recorder.add_stat("nic.rx.bytes")

    def test_pattern_resolves_at_start(self):
        sim = Simulator()
        telemetry = Telemetry()
        recorder = TimeSeriesRecorder(sim, telemetry=telemetry, interval_ns=MS)
        recorder.add_pattern("nic.rx.*")
        counter = telemetry.counter("nic.rx.frames")  # declared after add_pattern
        recorder.start()
        counter.inc(3)
        sim.run(until=MS)
        bundle = recorder.bundle()
        assert "nic.rx.frames" in bundle
        assert bundle.get("nic.rx.frames").values == [3.0]
        assert bundle.get("nic.rx.frames").kind == "counter"


class TestResolveConfig:
    def test_none_and_false(self):
        assert resolve_recorder_config(None) is None
        assert resolve_recorder_config(False) is None

    def test_true_is_coarse(self):
        assert resolve_recorder_config(True) == RecorderConfig.coarse()

    def test_presets(self):
        assert resolve_recorder_config("coarse").interval_ns == MS
        assert resolve_recorder_config("fine").interval_ns == MS // 10

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown recorder preset"):
            resolve_recorder_config("ultra")

    def test_bad_type(self):
        with pytest.raises(TypeError):
            resolve_recorder_config(3.5)


TINY = dict(
    app="apache", policy="ond.idle", target_rps=24_000.0,
    warmup_ns=5 * MS, measure_ns=30 * MS, drain_ns=15 * MS,
)


def _bundle_json(args):
    """Module-level pool worker: run one recorded experiment, return the
    serialized bundle (plain JSON data crosses the pool boundary)."""
    seed, capacity = args
    config = ExperimentConfig(seed=seed, **TINY)
    result = run_experiment(
        config,
        record_timeseries=RecorderConfig(interval_ns=MS, capacity=capacity),
    )
    return result.timeseries.to_json_dict()


class TestDeterminism:
    def test_serial_and_pool_bundles_identical(self):
        # Tight capacity forces several decimation rounds; the retained
        # grid must depend only on the sample count, so serial and
        # process-pool runs of the same seed agree exactly.
        items = [(7, 8), (8, 8)]
        serial = Runner(jobs=1).map(_bundle_json, items)
        pooled = Runner(jobs=2).map(_bundle_json, items)
        assert serial == pooled
        strides = {s["name"]: s["stride"] for s in serial[0]["series"]}
        assert strides["cpu.util"] >= 4  # decimation actually happened

    def test_same_seed_reproduces(self):
        assert _bundle_json((5, 64)) == _bundle_json((5, 64))


class TestClusterWiring:
    @pytest.fixture(scope="class")
    def result(self):
        config = ExperimentConfig(seed=4, collect_traces=True, **TINY)
        return run_experiment(config, record_timeseries="coarse")

    def test_standard_series_present(self, result):
        names = result.timeseries.names()
        for expected in ("cpu.freq_ghz", "cpu.util", "power.watts",
                         "runq.depth", "nic.rx_ring", "nic.rx.bytes",
                         "app.requests"):
            assert expected in names
        assert any(n.startswith("core") and n.endswith(".cstate") for n in names)

    def test_legacy_util_channel_parity(self, result):
        # The tap must keep the legacy channel bit-identical with the
        # recorded series (and with the retired UtilizationSampler).
        channel = result.trace.event_channel("server.cpu.util")
        series = result.timeseries.get("cpu.util")
        assert list(channel.times) == series.times
        assert list(channel.values) == series.values

    def test_freq_matches_trace_channel_bin_for_bin(self, result):
        channel = result.trace.event_channel("server.cpu.freq_ghz")
        series = result.timeseries.get("cpu.freq_ghz")
        for t, v in zip(series.times, series.values):
            assert channel.value_at(t, default=3.1) == v

    def test_counters_cumulative(self, result):
        rx = result.timeseries.get("nic.rx.bytes")
        assert rx.kind == "counter"
        assert rx.values == sorted(rx.values)
        assert rx.values[-1] > 0

    def test_no_recorder_no_bundle(self):
        config = ExperimentConfig(seed=4, **TINY)
        result = run_experiment(config)
        assert result.timeseries is None

    def test_observer_does_not_change_measurements(self):
        config = ExperimentConfig(seed=6, **TINY)
        plain = run_experiment(config)
        recorded = run_experiment(config, record_timeseries="coarse")
        assert recorded.latency.p99_ns == plain.latency.p99_ns
        assert recorded.requests_sent == plain.requests_sent
        assert recorded.energy.energy_j == pytest.approx(
            plain.energy.energy_j, rel=1e-9
        )

    def test_bundle_round_trip(self, result):
        data = result.timeseries.to_json_dict()
        clone = TimeseriesBundle.from_json_dict(data)
        assert clone.to_json_dict() == data
