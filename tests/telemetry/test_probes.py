"""Tests for probe points and the probe bus."""

from repro.telemetry import (
    CStateTransition,
    PStateChange,
    ProbeBus,
    ProbePoint,
    Telemetry,
)


class TestProbePoint:
    def test_disabled_without_subscribers(self):
        point = ProbePoint("cpu.cstate")
        assert not point.enabled
        assert not point

    def test_subscribe_enables_and_delivers(self):
        point = ProbePoint("cpu.cstate")
        seen = []
        point.subscribe(seen.append)
        assert point.enabled
        event = CStateTransition(10, "cpu", 0, "C6", 3, "enter")
        point.emit(event)
        assert seen == [event]

    def test_unsubscribe_disables_when_last_leaves(self):
        point = ProbePoint("p")
        a, b = [], []
        point.subscribe(a.append)
        point.subscribe(b.append)
        # A fresh bound-method object must still match (equality, not
        # identity).
        point.unsubscribe(a.append)
        assert point.enabled
        point.unsubscribe(b.append)
        assert not point.enabled

    def test_duplicate_subscribe_is_noop(self):
        point = ProbePoint("p")
        seen = []
        point.subscribe(seen.append)
        point.subscribe(seen.append)
        point.emit("x")
        assert seen == ["x"]


class TestProbeBus:
    def test_point_is_idempotent(self):
        bus = ProbeBus()
        assert bus.point("nic.rx") is bus.point("nic.rx")

    def test_exact_subscription_applies_to_future_points(self):
        bus = ProbeBus()
        seen = []
        bus.subscribe("cpu.pstate", seen.append)
        point = bus.point("cpu.pstate")  # created after subscribing
        assert point.enabled
        point.emit(PStateChange(0, "cpu", 0, 3.1e9))
        assert len(seen) == 1

    def test_prefix_pattern_matches_subtree_only(self):
        bus = ProbeBus()
        seen = []
        bus.subscribe("ncap.*", seen.append)
        bus.point("ncap.wake").emit("wake")
        bus.point("ncap.classify").emit("classify")
        bus.point("nic.rx").emit("rx")
        assert seen == ["wake", "classify"]

    def test_star_matches_everything(self):
        bus = ProbeBus()
        seen = []
        bus.subscribe("*", seen.append)
        bus.point("a").emit(1)
        bus.point("b.c").emit(2)
        assert seen == [1, 2]

    def test_unsubscribe_detaches_everywhere(self):
        bus = ProbeBus()
        seen = []
        bus.subscribe("*", seen.append)
        point = bus.point("x")
        bus.unsubscribe(seen.append)
        assert not point.enabled
        # ...including points created later.
        assert not bus.point("y").enabled

    def test_unsubscribe_leaves_other_subscribers_attached(self):
        bus = ProbeBus()
        wildcard, exact, prefixed = [], [], []
        bus.subscribe("*", wildcard.append)
        bus.subscribe("cpu.cstate", exact.append)
        bus.subscribe("cpu.*", prefixed.append)
        point = bus.point("cpu.cstate")

        bus.unsubscribe(exact.append)
        assert point.enabled
        point.emit("evt")
        assert wildcard == ["evt"]
        assert prefixed == ["evt"]
        assert exact == []

    def test_unsubscribe_removes_all_patterns_of_one_fn(self):
        # One callable subscribed under several patterns: a single
        # unsubscribe must detach every registration (and deliver each
        # event at most once while subscribed).
        bus = ProbeBus()
        seen = []
        bus.subscribe("*", seen.append)
        bus.subscribe("cpu.*", seen.append)
        bus.subscribe("cpu.cstate", seen.append)
        point = bus.point("cpu.cstate")
        point.emit("first")
        bus.unsubscribe(seen.append)
        point.emit("second")
        assert not point.enabled
        assert not bus.point("cpu.pstate").enabled
        assert "second" not in seen

    def test_unsubscribe_unknown_fn_is_noop(self):
        bus = ProbeBus()
        seen = []
        bus.subscribe("a", seen.append)
        bus.unsubscribe(print)  # never subscribed
        point = bus.point("a")
        point.emit(1)
        assert seen == [1]


class TestTelemetryFacade:
    def test_probe_and_stats_share_the_instance(self):
        telemetry = Telemetry()
        probe = telemetry.probe("nic.rx")
        assert telemetry.probes.point("nic.rx") is probe
        counter = telemetry.counter("nic.rx.frames")
        assert telemetry.stats.value("nic.rx.frames") == counter.value
