"""Tests for the probe sinks: channel rebuild and Chrome-trace assembly."""

from repro.sim.trace import TraceRecorder
from repro.telemetry import (
    ChannelSink,
    ChromeTraceSink,
    CStateTransition,
    GovernorDecision,
    NcapWake,
    NicRx,
    NicTx,
    PStateChange,
    RequestPhase,
    Telemetry,
    node_of_domain,
)


def test_node_of_domain():
    assert node_of_domain("server.cpu") == "server"
    assert node_of_domain("server.cpu.domain3") == "server"
    assert node_of_domain("other") == "other"


class TestChannelSink:
    def make(self):
        telemetry = Telemetry()
        trace = TraceRecorder()
        telemetry.add_sink(ChannelSink(trace))
        return telemetry, trace

    def test_rx_tx_bytes_channels(self):
        telemetry, trace = self.make()
        telemetry.probe("nic.rx").emit(NicRx(100, "server", 1500, "request"))
        telemetry.probe("nic.tx").emit(NicTx(200, "server", 900, "response"))
        assert trace.counter_channel("server.rx_bytes").total == 1500
        assert trace.counter_channel("server.tx_bytes").total == 900

    def test_freq_channel_in_ghz(self):
        telemetry, trace = self.make()
        telemetry.probe("cpu.pstate").emit(
            PStateChange(0, "server.cpu", 0, 3.1e9)
        )
        channel = trace.event_channel("server.cpu.freq_ghz")
        assert channel.values == [3.1]

    def test_cstate_channel_records_index_then_zero(self):
        telemetry, trace = self.make()
        probe = telemetry.probe("cpu.cstate")
        probe.emit(CStateTransition(10, "server.cpu", 2, "C6", 3, "enter"))
        probe.emit(CStateTransition(50, "server.cpu", 2, "C6", 3, "wake"))
        channel = trace.event_channel("server.core2.cstate")
        assert channel.times == [10, 50]
        assert channel.values == [3, 0]

    def test_ncap_wake_channel(self):
        telemetry, trace = self.make()
        telemetry.probe("ncap.wake").emit(NcapWake(77, "eth0.ncap", "cit"))
        channel = trace.event_channel("eth0.ncap.int_wake")
        assert channel.times == [77]

    def test_subscriptions_apply_to_probes_created_later(self):
        telemetry = Telemetry()
        trace = TraceRecorder()
        telemetry.add_sink(ChannelSink(trace))
        # The probe point did not exist when the sink attached.
        telemetry.probe("nic.rx").emit(NicRx(5, "eth9", 60, "data"))
        assert trace.counter_channel("eth9.rx_bytes").total == 60


class TestChromeTraceSink:
    def make(self, **kwargs):
        telemetry = Telemetry()
        sink = ChromeTraceSink(**kwargs)
        telemetry.add_sink(sink)
        return telemetry, sink

    def test_cstate_becomes_complete_span(self):
        telemetry, sink = self.make()
        probe = telemetry.probe("cpu.cstate")
        probe.emit(CStateTransition(1_000, "server.cpu", 0, "C1", 1, "enter"))
        probe.emit(CStateTransition(5_000, "server.cpu", 0, "C1", 1, "wake"))
        spans = [e for e in sink.trace_events() if e["ph"] == "X"]
        assert len(spans) == 1
        assert spans[0]["name"] == "C1"
        assert spans[0]["ts"] == 1.0  # microseconds
        assert spans[0]["dur"] == 4.0

    def test_promotion_closes_and_reopens(self):
        telemetry, sink = self.make()
        probe = telemetry.probe("cpu.cstate")
        probe.emit(CStateTransition(0, "server.cpu", 0, "C1", 1, "enter"))
        probe.emit(CStateTransition(2_000, "server.cpu", 0, "C6", 3, "promote"))
        probe.emit(CStateTransition(9_000, "server.cpu", 0, "C6", 3, "wake"))
        spans = [e for e in sink.trace_events() if e["ph"] == "X"]
        assert [s["name"] for s in spans] == ["C1", "C6"]

    def test_open_spans_closed_at_trace_end(self):
        telemetry, sink = self.make()
        probe = telemetry.probe("cpu.cstate")
        probe.emit(CStateTransition(0, "server.cpu", 1, "C6", 3, "enter"))
        telemetry.probe("governor.decision").emit(
            GovernorDecision(10_000, "menu", 3, 123.0, core_id=1)
        )
        spans = [e for e in sink.trace_events() if e["ph"] == "X"]
        assert len(spans) == 1
        assert spans[0]["dur"] == 10.0  # closed at the last-seen timestamp

    def test_request_span_lifecycle(self):
        telemetry, sink = self.make()
        probe = telemetry.probe("request.span")
        for t, phase in (
            (0, "arrival"), (10_000, "dma"), (20_000, "delivered"),
            (30_000, "service"), (90_000, "reply"),
        ):
            probe.emit(RequestPhase(t, "client0", 7, phase))
        events = [e for e in sink.trace_events() if e.get("id") == "client0/7"]
        phases = [e["ph"] for e in events]
        assert phases[0] == "b"
        assert phases[-1] == "e"
        assert phases.count("n") == 4

    def test_pstate_counter_event(self):
        telemetry, sink = self.make()
        telemetry.probe("cpu.pstate").emit(
            PStateChange(4_000, "server.cpu", 2, 2.2e9)
        )
        counters = [e for e in sink.trace_events() if e["ph"] == "C"]
        assert counters == [{
            "name": "server.cpu.freq_ghz", "cat": "pstate", "ph": "C",
            "args": {"GHz": 2.2}, "pid": 1, "tid": 0, "ts": 4.0,
        }]

    def test_every_event_has_required_keys(self):
        telemetry, sink = self.make()
        telemetry.probe("cpu.pstate").emit(PStateChange(0, "cpu", 0, 3.1e9))
        telemetry.probe("ncap.wake").emit(NcapWake(5, "ncap", "it_high"))
        required = {"ph", "ts", "pid", "tid", "name"}
        for event in sink.trace_events():
            assert required <= set(event)
