"""Golden-file test for the Chrome-trace exporter.

A small fixed-seed cluster run must serialize to exactly the JSON
committed under ``golden/`` — the exporter's output format is a contract
with external tooling (Perfetto, ``chrome://tracing``), so format drift
has to be a conscious, reviewed change.

Regenerate after an intentional change with::

    PYTHONPATH=src python tests/telemetry/test_chrome_trace_golden.py
"""

import json
import os

from repro.apps.client import reset_request_ids
from repro.cluster.simulation import ExperimentConfig, run_experiment
from repro.sim.units import MS
from repro.telemetry import ChromeTraceSink

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "chrome_trace_small.json"
)

#: Chrome Trace Event Format required keys (every event must carry them).
REQUIRED_KEYS = {"ph", "ts", "pid", "tid", "name"}

#: Phase codes the exporter is allowed to emit.
KNOWN_PHASES = {"B", "E", "X", "C", "i", "b", "n", "e", "M"}


def small_fixed_seed_trace() -> dict:
    """Run the small deterministic scenario and export its trace dict."""
    # Request ids come from a process-global counter; reset it so the
    # exported span ids do not depend on tests that ran earlier.
    reset_request_ids()
    config = ExperimentConfig(
        app="apache",
        policy="ncap.cons",
        target_rps=4_000.0,
        n_clients=1,
        burst_size=10,
        warmup_ns=2 * MS,
        measure_ns=6 * MS,
        drain_ns=2 * MS,
        seed=3,
    )
    sink = ChromeTraceSink()
    run_experiment(config, sinks=[sink])
    return sink.to_json_dict()


class TestChromeTraceGolden:
    def test_matches_golden_file(self):
        with open(GOLDEN_PATH, "r", encoding="utf-8") as fh:
            golden = json.load(fh)
        assert small_fixed_seed_trace() == golden

    def test_golden_is_valid_trace_event_format(self):
        with open(GOLDEN_PATH, "r", encoding="utf-8") as fh:
            golden = json.load(fh)
        events = golden["traceEvents"]
        assert events, "golden trace must not be empty"
        for event in events:
            assert REQUIRED_KEYS <= set(event), event
            assert event["ph"] in KNOWN_PHASES, event
            assert isinstance(event["ts"], (int, float))
        # The interesting content is present: C-state spans, P-state
        # counter samples, and complete request spans.
        phases = {e["ph"] for e in events}
        assert {"X", "C", "b", "e"} <= phases


def _regenerate() -> None:  # pragma: no cover - manual tool
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w", encoding="utf-8") as fh:
        json.dump(small_fixed_seed_trace(), fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":  # pragma: no cover - manual tool
    _regenerate()
