"""Tests for merging flight-recorder bundles across shards.

The merge contract: node-name prefixes on every series / window /
watchpoint, deterministic sorted output, and complete independence from
the order the per-server bundles are supplied in — the property the
sharded coordinator's bit-identical ResultRecord rests on.
"""

import pytest

from repro.telemetry.recorder import (
    CaptureWindow,
    SeriesData,
    TimeseriesBundle,
    WatchpointRecord,
    merge_timeseries_bundles,
)


def make_bundle(offset=0.0, start=0, end=1000):
    return TimeseriesBundle(
        interval_ns=100,
        start_ns=start,
        end_ns=end,
        series=[
            SeriesData("power.watts", "gauge", 1,
                       [0, 100, 200], [10.0 + offset, 11.0, 12.0]),
            SeriesData("nic.rx.bytes", "counter", 1,
                       [0, 100, 200], [0.0, 500.0, 900.0]),
        ],
        windows=[
            CaptureWindow(
                "hot", 150, 100, 200, 10,
                series={"power.watts": SeriesData(
                    "power.watts", "gauge", 1, [100, 110], [11.0, 11.5]
                )},
            )
        ],
        fired=[WatchpointRecord("hot", "power.watts", 150, 11.2, "rose")],
    )


class TestMergeBundles:
    def test_series_prefixed_and_sorted(self):
        merged = merge_timeseries_bundles(
            {"server1": make_bundle(), "server0": make_bundle()}
        )
        names = [s.name for s in merged.series]
        assert names == sorted(names)
        assert "server0.power.watts" in names
        assert "server1.nic.rx.bytes" in names

    def test_merge_order_independent(self):
        a = {"server0": make_bundle(), "server1": make_bundle(offset=5.0)}
        b = dict(reversed(list(a.items())))
        ma = merge_timeseries_bundles(a).to_json_dict()
        mb = merge_timeseries_bundles(b).to_json_dict()
        assert ma == mb

    def test_envelope_spans_all_inputs(self):
        merged = merge_timeseries_bundles({
            "server0": make_bundle(start=0, end=500),
            "server1": make_bundle(start=200, end=900),
        })
        assert merged.start_ns == 0
        assert merged.end_ns == 900

    def test_windows_and_watchpoints_prefixed(self):
        merged = merge_timeseries_bundles({"server3": make_bundle()})
        assert merged.windows[0].watchpoint == "server3.hot"
        assert list(merged.windows[0].series) == ["server3.power.watts"]
        assert merged.fired[0].name == "server3.hot"
        assert merged.fired[0].series == "server3.power.watts"

    def test_source_bundles_not_mutated(self):
        bundle = make_bundle()
        merge_timeseries_bundles({"server0": bundle})
        assert bundle.series[0].name == "power.watts"
        assert bundle.fired[0].name == "hot"

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            merge_timeseries_bundles({})

    def test_mismatched_intervals_rejected(self):
        other = make_bundle()
        other.interval_ns = 999
        with pytest.raises(ValueError):
            merge_timeseries_bundles(
                {"server0": make_bundle(), "server1": other}
            )

    def test_merged_bundle_round_trips_through_json(self):
        merged = merge_timeseries_bundles(
            {"server0": make_bundle(), "server1": make_bundle(offset=2.0)}
        )
        clone = TimeseriesBundle.from_json_dict(merged.to_json_dict())
        assert clone.to_json_dict() == merged.to_json_dict()
        assert clone.get("server1.power.watts").values[0] == 12.0
