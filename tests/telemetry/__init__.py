"""Tests for the unified telemetry subsystem."""
