"""Watchpoint tests: predicates, trip -> hi-res capture, probe emission."""

import pytest

from repro.sim import Simulator
from repro.sim.units import MS
from repro.telemetry import (
    ChromeTraceSink,
    Telemetry,
    TimeSeriesRecorder,
    Watchpoint,
    WatchpointFired,
    quantile_above,
    rate_above,
    spike,
    threshold_above,
    threshold_below,
)


def _driven_recorder(sim, telemetry=None, values=(), interval_ns=MS):
    """A recorder sampling a scripted series ``load`` (one value per tick)."""
    recorder = TimeSeriesRecorder(sim, telemetry=telemetry, interval_ns=interval_ns)
    script = list(values)

    def source() -> float:
        index = min(sim.now // interval_ns - 1, len(script) - 1)
        return float(script[index]) if script else 0.0

    recorder.add_source("load", source)
    return recorder


class TestPredicates:
    def _view(self, values):
        from repro.telemetry.recorder import SeriesBuffer
        from repro.telemetry.triggers import SeriesView

        buffer = SeriesBuffer("s", "gauge", capacity=1024)
        for i, v in enumerate(values):
            buffer.append(i * MS, float(v))
        return SeriesView("s", MS, buffer)

    def test_threshold_above(self):
        predicate = threshold_above(5.0)
        assert not predicate(self._view([1, 5]))
        assert predicate(self._view([1, 6]))
        assert "5" in predicate.description

    def test_threshold_below(self):
        predicate = threshold_below(2.0)
        assert predicate(self._view([3, 1]))
        assert not predicate(self._view([3, 2]))

    def test_quantile_above(self):
        predicate = quantile_above(0.99, 8.0, window=10)
        assert not predicate(self._view([1] * 10))
        assert predicate(self._view([1] * 9 + [100]))

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            quantile_above(1.5, 1.0)
        with pytest.raises(ValueError):
            quantile_above(0.5, 1.0, window=1)

    def test_rate_above(self):
        # 1000 units in 1 ms = 1e6/s.
        predicate = rate_above(5e5)
        assert predicate(self._view([0, 1000]))
        assert not predicate(self._view([0, 100]))

    def test_spike(self):
        predicate = spike(factor=4.0, window=8)
        steady = [10, 20, 30, 40, 50, 60, 70]
        assert not predicate(self._view(steady))
        assert predicate(self._view(steady + [200]))

    def test_spike_validation(self):
        with pytest.raises(ValueError):
            spike(factor=1.0)
        with pytest.raises(ValueError):
            spike(window=2)


class TestWatchpointFiring:
    def test_trip_opens_hires_window_and_emits_probe(self):
        sim = Simulator()
        telemetry = Telemetry()
        sink = ChromeTraceSink()
        telemetry.add_sink(sink)
        fired_events = []
        telemetry.probes.subscribe("telemetry.watchpoint", fired_events.append)

        values = [0, 0, 0, 9, 9, 0, 0, 0, 0, 0]
        recorder = _driven_recorder(sim, telemetry, values)
        watchpoint = Watchpoint(
            "overload", "load", threshold_above(5.0),
            capture_ns=2 * MS, hires_factor=4,
        )
        recorder.add_watchpoint(watchpoint)
        recorder.start()
        sim.run(until=10 * MS)

        bundle = recorder.bundle()
        # Fired exactly once (edge-triggered, quiet during capture).
        assert watchpoint.fire_count == 1
        assert len(bundle.fired) == 1
        record = bundle.fired[0]
        assert record.name == "overload"
        assert record.series == "load"
        assert record.t_ns == 4 * MS
        assert record.value == 9.0

        # Typed probe event reached subscribers.
        assert len(fired_events) == 1
        event = fired_events[0]
        assert isinstance(event, WatchpointFired)
        assert event.name == "overload" and event.t_ns == 4 * MS

        # Chrome-trace instant marker present.
        instants = [e for e in sink.trace_events()
                    if e.get("name") == "watchpoint.overload"]
        assert len(instants) == 1
        assert instants[0]["ph"] == "i"

        # Hi-res window sampled at interval/4 for the capture span.
        assert len(bundle.windows) == 1
        window = bundle.windows[0]
        assert window.interval_ns == MS // 4
        assert window.start_ns == 4 * MS
        hires = window.series["load"]
        assert len(hires.times) >= 8  # 2 ms window at 250 us cadence
        assert all(t > 4 * MS for t in hires.times)

        # Watchpoint counter incremented.
        assert telemetry.stats.get("recorder.watchpoints.fired").value == 1

    def test_rearm_on_clear(self):
        sim = Simulator()
        # Two separate excursions with a clear gap -> two windows; the
        # sustained second half of excursion one never re-fires.
        values = [0, 9, 9, 9, 9, 9, 0, 0, 9, 9, 0, 0]
        recorder = _driven_recorder(sim, values=values)
        watchpoint = Watchpoint(
            "overload", "load", threshold_above(5.0),
            capture_ns=2 * MS, hires_factor=2,
        )
        recorder.add_watchpoint(watchpoint)
        recorder.start()
        sim.run(until=12 * MS)
        bundle = recorder.bundle()
        assert watchpoint.fire_count == 2
        assert [f.t_ns for f in bundle.fired] == [2 * MS, 9 * MS]
        assert len(bundle.windows) == 2

    def test_still_tripped_after_window_stays_quiet(self):
        sim = Simulator()
        values = [0, 9, 9, 9, 9, 9, 9, 9, 9, 9]
        recorder = _driven_recorder(sim, values=values)
        watchpoint = Watchpoint(
            "overload", "load", threshold_above(5.0),
            capture_ns=2 * MS, hires_factor=2,
        )
        recorder.add_watchpoint(watchpoint)
        recorder.start()
        sim.run(until=10 * MS)
        # One sustained excursion = one firing, despite window closing
        # while the predicate still holds.
        assert watchpoint.fire_count == 1

    def test_base_cadence_untouched_by_capture(self):
        sim = Simulator()
        values = [0, 9, 0, 0, 0, 0]
        recorder = _driven_recorder(sim, values=values)
        recorder.add_watchpoint(
            Watchpoint("w", "load", threshold_above(5.0),
                       capture_ns=2 * MS, hires_factor=8)
        )
        recorder.start()
        sim.run(until=6 * MS)
        series = recorder.bundle().get("load")
        assert series.times == [MS * (i + 1) for i in range(6)]
        assert series.stride == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            Watchpoint("w", "s", threshold_above(1.0), capture_ns=0)
        with pytest.raises(ValueError):
            Watchpoint("w", "s", threshold_above(1.0), hires_factor=1)

    def test_experiment_watchpoint_end_to_end(self):
        from repro.cluster.simulation import ExperimentConfig, run_experiment

        config = ExperimentConfig(
            app="apache", policy="ond.idle", target_rps=24_000.0,
            warmup_ns=5 * MS, measure_ns=30 * MS, drain_ns=15 * MS, seed=4,
        )
        watchpoint = Watchpoint(
            "any-rx", "nic.rx.bytes", rate_above(1.0), capture_ns=2 * MS
        )
        result = run_experiment(
            config, record_timeseries="coarse", watchpoints=[watchpoint]
        )
        bundle = result.timeseries
        assert watchpoint.fire_count >= 1
        assert bundle.fired and bundle.windows
        assert bundle.fired[0].name == "any-rx"
        assert "cpu.util" in bundle.windows[0].series
