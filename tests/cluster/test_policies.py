"""Tests for the policy registry."""

import pytest

from repro.cluster.policies import POLICIES, POLICY_ORDER, PolicyConfig, get_policy


class TestRegistry:
    def test_seven_policies(self):
        assert len(POLICIES) == 7
        assert set(POLICY_ORDER) == set(POLICIES)

    def test_paper_policy_definitions(self):
        assert POLICIES["perf"].governor == "performance"
        assert not POLICIES["perf"].cstates
        assert POLICIES["ond"].governor == "ondemand"
        assert not POLICIES["ond"].cstates
        assert POLICIES["perf.idle"].cstates
        assert POLICIES["ond.idle"].cstates

    def test_ncap_policies_run_atop_ond_idle(self):
        for name in ("ncap.sw", "ncap.cons", "ncap.aggr"):
            policy = POLICIES[name]
            assert policy.governor == "ondemand"
            assert policy.cstates
            assert policy.uses_ncap

    def test_fcons_values(self):
        assert POLICIES["ncap.cons"].fcons == 5
        assert POLICIES["ncap.aggr"].fcons == 1

    def test_variants(self):
        assert POLICIES["ncap.sw"].ncap == "sw"
        assert POLICIES["ncap.cons"].ncap == "hw"

    def test_get_policy_by_name_and_passthrough(self):
        policy = get_policy("perf")
        assert policy.name == "perf"
        assert get_policy(policy) is policy

    def test_get_policy_unknown(self):
        with pytest.raises(KeyError):
            get_policy("turbo")


class TestPolicyConfig:
    def test_ncap_config_carries_fcons(self):
        config = POLICIES["ncap.aggr"].ncap_config()
        assert config is not None and config.fcons == 1

    def test_non_ncap_has_no_config(self):
        assert POLICIES["perf"].ncap_config() is None

    def test_base_config_overridable(self):
        from repro.core import NCAPConfig

        base = NCAPConfig(rht_rps=99_000)
        config = POLICIES["ncap.cons"].ncap_config(base)
        assert config.rht_rps == 99_000
        assert config.fcons == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            PolicyConfig("x", governor="turbo")
        with pytest.raises(ValueError):
            PolicyConfig("x", ncap="firmware")
