"""Fleet observability: tracing determinism, window profiler, monitor.

The contract under test mirrors the sharding parity suite: every fleet
observer (request tracing, window profiler, live monitor) is a pure
observer — the merged ResultRecord, *including* the deterministic
``fleet`` trace section, is byte-identical (JSON + sha256) across shard
count, pool size and window size, and identical-minus-``fleet`` to an
observer-free run.
"""

import hashlib
import json
import math
from dataclasses import replace

import pytest

from repro.cluster.datacenter import DatacenterConfig, run_datacenter
from repro.cluster.frontend import FrontendConfig
from repro.profiling.fleet import (
    FleetProfile,
    WindowSample,
    format_fleet_profile,
    window_trace_events,
)
from repro.sim.units import MS
from repro.telemetry.monitor import RunMonitor, resolve_monitor
from repro.telemetry.tracing import (
    FRONTEND_PID,
    HOPS,
    SHARD_PID_BASE,
    FleetTraceBundle,
    TraceConfig,
    fleet_trace_events,
    format_hop_table,
    is_sampled,
    lane_metadata_events,
    resolve_trace_config,
)


def frontend_config(**overrides) -> DatacenterConfig:
    base = dict(
        app="memcached",
        n_servers=4,
        n_shards=1,
        total_rps=80_000.0,
        seed=11,
        warmup_ns=5 * MS,
        measure_ns=20 * MS,
        drain_ns=15 * MS,
        frontend=FrontendConfig(
            n_users=5_000,
            spray="po2",
            burst_size=75,
            intra_burst_gap_ns=1_000,
            dispatch_latency_ns=1 * MS,
        ),
    )
    base.update(overrides)
    return DatacenterConfig(**base)


def record_sha(result) -> str:
    payload = json.dumps(result.record.to_json_dict(), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


class TestSamplingRule:
    def test_pure_and_deterministic(self):
        picks = [
            (src, rid)
            for src in ("frontend0", "frontend3")
            for rid in range(1, 2_000)
            if is_sampled(src, rid, 64)
        ]
        assert picks == [
            (src, rid)
            for src in ("frontend0", "frontend3")
            for rid in range(1, 2_000)
            if is_sampled(src, rid, 64)
        ]
        assert picks  # the rule actually selects something at 1-in-64

    def test_sample_every_one_takes_all(self):
        assert all(is_sampled("frontend0", rid, 1) for rid in range(1, 50))

    def test_none_req_id_never_sampled(self):
        assert not is_sampled("frontend0", None, 1)

    def test_resolve_spec_variants(self):
        assert resolve_trace_config(None) is None
        assert resolve_trace_config(False) is None
        assert resolve_trace_config(True) == TraceConfig()
        assert resolve_trace_config(128).sample_every == 128
        cfg = TraceConfig(sample_every=7, max_traces=3)
        assert resolve_trace_config(cfg) is cfg
        with pytest.raises(TypeError, match="trace_requests"):
            resolve_trace_config(3.5)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="sample_every"):
            TraceConfig(sample_every=0)
        with pytest.raises(ValueError, match="max_traces"):
            TraceConfig(max_traces=0)


class TestTraceParity:
    """serial == sharded == pooled, for bundles and whole records."""

    def test_byte_identical_across_shards_and_pools(self):
        base = frontend_config()
        serial = run_datacenter(base, jobs=1, trace_requests=64)
        sharded = run_datacenter(
            replace(base, n_shards=2), jobs=1, trace_requests=64
        )
        pooled = run_datacenter(
            replace(base, n_shards=4), jobs=2, trace_requests=64,
            profile_fleet=True,
        )
        shas = {record_sha(r) for r in (serial, sharded, pooled)}
        assert len(shas) == 1
        bundles = {
            json.dumps(r.trace.to_json_dict(), sort_keys=True)
            for r in (serial, sharded, pooled)
        }
        assert len(bundles) == 1
        assert len(serial.trace) > 0

    def test_byte_identical_at_a_smaller_window(self):
        # Window size changes the planner's boundary load views (a
        # different simulated experiment in frontend mode — only client
        # mode is window-invariant), but at any fixed window the traced
        # records stay placement-independent.
        base = frontend_config()
        serial = run_datacenter(
            replace(base, n_shards=2), jobs=1, trace_requests=64,
            window_ns=MS // 2,
        )
        pooled = run_datacenter(
            replace(base, n_shards=4), jobs=2, trace_requests=64,
            window_ns=MS // 2,
        )
        assert record_sha(serial) == record_sha(pooled)
        assert serial.trace.to_json_dict() == pooled.trace.to_json_dict()

    def test_observers_do_not_perturb_simulated_results(self):
        base = frontend_config(n_shards=2)
        plain = run_datacenter(base, jobs=1)
        observed = run_datacenter(
            base, jobs=1, trace_requests=64, profile_fleet=True,
            monitor=RunMonitor("-", clock=iter(range(10_000)).__next__),
        )
        a = plain.record.to_json_dict()
        b = observed.record.to_json_dict()
        a.pop("fleet")
        b.pop("fleet")
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_tracing_requires_frontend_mode(self):
        classic = DatacenterConfig(
            app="memcached", n_servers=2, n_shards=2, total_rps=20_000.0,
            load_shares="uniform",
            warmup_ns=2 * MS, measure_ns=6 * MS, drain_ns=4 * MS,
        )
        with pytest.raises(ValueError, match="frontend mode"):
            run_datacenter(classic, jobs=1, trace_requests=64)


class TestEnergyFleetParity:
    """Energy provenance over the fleet: placement-independent, pure."""

    def test_byte_identical_across_shards_and_pools(self):
        base = frontend_config()
        serial = run_datacenter(base, jobs=1, energy_attribution=True)
        sharded = run_datacenter(
            replace(base, n_shards=2), jobs=1, energy_attribution=True
        )
        pooled = run_datacenter(
            replace(base, n_shards=4), jobs=2, energy_attribution=True
        )
        shas = {record_sha(r) for r in (serial, sharded, pooled)}
        assert len(shas) == 1

        attrs = [r.record.energy_attribution_report()
                 for r in (serial, sharded, pooled)]
        assert attrs[0] == attrs[1] == attrs[2]
        assert attrs[0].n_nodes == base.n_servers
        # Governor counters merge per (governor, core position): identical
        # across placements, and every idle exit is graded exactly once.
        totals = {json.dumps(a.decision_totals(), sort_keys=True) for a in attrs}
        assert len(totals) == 1
        assert sum(attrs[0].decision_totals().values()) > 0

    def test_fleet_energy_conserves_against_merged_record(self):
        # Satellite: EnergyReport.merge / residency conservation across
        # the shard merge path.  The merged record's energy integral and
        # idle residency must telescope exactly into the attribution.
        result = run_datacenter(
            frontend_config(n_shards=2), jobs=2, energy_attribution=True
        )
        record = result.record
        attr = record.energy_attribution_report()
        assert attr.total_j == pytest.approx(record.energy_j, abs=1e-12)
        assert abs(attr.conservation_error_j) <= 1e-6
        idle_ns = sum(
            ns for mode, ns in record.residency_ns.items()
            if mode in ("idle", "C1", "C3", "C6")
        )
        assert sum(attr.floor_ns_by_state.values()) == idle_ns
        # The merged per-mode energy dict is itself conserved.
        assert sum(record.energy_by_mode_j.values()) == pytest.approx(
            record.energy_j, abs=1e-9
        )

    def test_energy_accounting_does_not_perturb_results(self):
        base = frontend_config(n_shards=2)
        plain = run_datacenter(base, jobs=1)
        observed = run_datacenter(base, jobs=1, energy_attribution=True)
        a = plain.record.to_json_dict()
        b = observed.record.to_json_dict()
        assert a.pop("energy_attribution") == {}
        assert b.pop("energy_attribution")
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


class TestTraceContent:
    @pytest.fixture(scope="class")
    def traced(self):
        return run_datacenter(
            frontend_config(n_shards=2), jobs=1, trace_requests=64,
        )

    def test_sampled_requests_telescope_end_to_end(self, traced):
        bundle = traced.trace
        assert bundle.sampled_total == len(bundle.traces)
        for trace in bundle.traces:
            marks = trace.markers()
            # Frontend stamps plus the full server datapath and reply.
            for marker in ("decision", "send", "arrival", "dma",
                           "delivered", "service", "reply", "reply_recv"):
                assert marker in marks, (trace.trace_id, marker)
            assert marks["decision"] < marks["send"] < marks["arrival"]
            assert marks["arrival"] <= marks["dma"] <= marks["delivered"]
            assert marks["delivered"] <= marks["service"] <= marks["reply"]
            assert marks["reply"] < marks["reply_recv"]

    def test_hop_summary_and_table(self, traced):
        summary = traced.trace.hop_summary()
        n = len(traced.trace)
        for name, _, _ in HOPS:
            assert summary[name]["count"] == n
            assert summary[name]["min_ns"] <= summary[name]["mean_ns"]
            assert summary[name]["mean_ns"] <= summary[name]["max_ns"]
        # dispatch latency is exact by construction
        assert summary["dispatch"]["min_ns"] == 1 * MS
        assert summary["dispatch"]["max_ns"] == 1 * MS
        table = format_hop_table(traced.trace)
        assert "rtt" in table and "nic_dma" in table
        assert f"{n} sampled request" in table

    def test_chrome_export_lanes_and_metadata(self, traced):
        shard_of_server = {
            i: s.shard_index for s in traced.shards for i in s.server_indices
        }
        events = fleet_trace_events(traced.trace, shard_of_server)
        pids = {e["pid"] for e in events}
        assert FRONTEND_PID in pids
        assert {SHARD_PID_BASE, SHARD_PID_BASE + 1} <= pids
        names = {
            (e["pid"], e["args"]["name"])
            for e in events if e["name"] == "process_name"
        }
        assert (FRONTEND_PID, "frontend tier") in names
        assert (SHARD_PID_BASE, "shard 0") in names
        assert (SHARD_PID_BASE + 1, "shard 1") in names
        # every duration event is well-formed
        for e in events:
            if e["ph"] == "X":
                assert e["dur"] >= 0.0

    def test_max_traces_cap_is_deterministic(self):
        base = frontend_config()
        capped = TraceConfig(sample_every=16, max_traces=5)
        serial = run_datacenter(base, jobs=1, trace_requests=capped)
        sharded = run_datacenter(
            replace(base, n_shards=4), jobs=2, trace_requests=capped
        )
        assert len(serial.trace) == 5
        assert serial.trace.sampled_total > 5
        assert (serial.trace.to_json_dict()
                == sharded.trace.to_json_dict())

    def test_bundle_round_trip(self, traced):
        data = traced.trace.to_json_dict()
        clone = FleetTraceBundle.from_json_dict(data)
        assert clone.to_json_dict() == data


class TestFleetProfile:
    def make_profile(self) -> FleetProfile:
        profile = FleetProfile(n_shards=2, n_slots=2)
        # Window 0: shard 1 straggles; window 1: shard 0 straggles.
        profile.record(WindowSample(
            index=0, t_start_ns=0, t_end_ns=1000,
            plan_s=0.01, advance_s=0.32, observe_s=0.01,
            shard_wall_s={0: 0.1, 1: 0.3},
            shard_events={0: 100, 1: 300}, injections=4,
        ))
        profile.record(WindowSample(
            index=1, t_start_ns=1000, t_end_ns=2000,
            plan_s=0.01, advance_s=0.22, observe_s=0.01,
            shard_wall_s={0: 0.2, 1: 0.1},
            shard_events={0: 200, 1: 100}, injections=2,
        ))
        return profile

    def test_derived_metrics(self):
        profile = self.make_profile()
        assert profile.critical_path_s == pytest.approx(0.5)
        assert profile.total_shard_wall_s == pytest.approx(0.7)
        # totals: shard0 = 0.3, shard1 = 0.4; mean = 0.35
        assert profile.load_imbalance_factor == pytest.approx(0.4 / 0.35)
        assert profile.speedup_bound == pytest.approx(0.7 / 0.5)
        assert profile.straggler_windows == {0: 1, 1: 1}
        shares = profile.critical_path_share
        assert shares[1] == pytest.approx(0.3 / 0.5)
        assert shares[0] == pytest.approx(0.2 / 0.5)
        # capacity: 2 * (0.3 + 0.2) = 1.0; busy = 0.7
        assert profile.pool_slot_utilization == pytest.approx(0.7)
        coord = profile.coordinator_s
        assert coord["plan_s"] == pytest.approx(0.02)
        assert coord["barrier_wait_s"] == pytest.approx(0.04)

    def test_report_and_json(self):
        profile = self.make_profile()
        report = format_fleet_profile(profile, measured_speedup=1.23)
        assert "load-imbalance factor" in report
        assert "speedup bound" in report
        assert "(measured 1.23x)" in report
        assert "pool-slot utilization" in report
        data = profile.to_json_dict()
        assert data["n_windows"] == 2
        assert data["shards"]["1"]["straggler_windows"] == 1
        assert data["windows"][0]["straggler"] == 1

    def test_window_trace_events(self):
        events = window_trace_events(self.make_profile())
        spans = [e for e in events if e["ph"] == "X"]
        # 3 coordinator phases + 2 shard spans, per window
        assert len(spans) == 2 * (3 + 2)
        names = {
            e["args"]["name"] for e in events if e["name"] == "thread_name"
        }
        assert {"coordinator", "shard 0", "shard 1"} <= names

    def test_real_run_populates_profile(self):
        result = run_datacenter(
            frontend_config(n_shards=2), jobs=1, profile_fleet=True,
        )
        profile = result.fleet_profile
        assert profile is not None
        assert len(profile.windows) == 40  # 40ms run / 1ms windows
        assert profile.total_shard_wall_s > 0
        assert profile.speedup_bound >= 1.0
        assert set(profile.shard_wall_totals) == {0, 1}


class TestRunMonitor:
    def test_heartbeats_and_jsonl(self, tmp_path):
        path = str(tmp_path / "progress.jsonl")
        clock = iter(float(i) for i in range(100))
        monitor = RunMonitor(path, interval_s=0.0, clock=clock.__next__)
        result = run_datacenter(
            frontend_config(n_shards=2), jobs=1, monitor=monitor,
        )
        assert result.record is not None
        lines = [
            json.loads(line)
            for line in open(path, encoding="utf-8")
        ]
        assert lines[0]["type"] == "begin"
        assert lines[0]["n_windows"] == 40
        assert lines[-1]["type"] == "end"
        beats = [l for l in lines if l["type"] == "heartbeat"]
        assert beats
        last = beats[-1]
        assert last["windows_done"] == 40
        assert last["sim_ns"] == frontend_config().end_ns
        assert last["straggler"] in (0, 1)
        assert set(last["shard_events_per_s"]) == {"0", "1"}
        assert last["events_total"] > 0
        # ETA falls to ~0 by the final window
        assert last["eta_s"] == pytest.approx(0.0, abs=1e-6)

    def test_interval_throttling(self):
        clock = iter([0.0, 0.0] + [0.1 * i for i in range(1, 200)])
        monitor = RunMonitor("-", interval_s=10.0, clock=clock.__next__)
        monitor._fh = None  # keep stderr clean; emitted list still fills
        monitor._t0 = 0.0
        monitor._last_emit = -10.0
        monitor._end_ns = 100
        monitor._n_windows = 100
        for i in range(99):
            monitor.on_window(
                index=i, t_end_ns=i + 1, shard_wall_s={0: 0.1},
                shard_events={0: 10}, events_total=10 * (i + 1),
            )
        beats = [p for p in monitor.emitted if p["type"] == "heartbeat"]
        # 0.1s per window at a 10s interval: only the first beats emit
        assert 1 <= len(beats) < 20

    def test_eta_null_when_first_window_beats_the_clock(self):
        # A first window that completes inside one clock tick (elapsed
        # 0.0) has no extrapolation basis: eta_s must be null, never inf
        # or a division artifact.
        clock = iter([0.0, 0.0]).__next__  # begin() and on_window() agree
        monitor = RunMonitor("-", interval_s=1.0, clock=clock)
        monitor._fh = None
        monitor._t0 = 0.0
        monitor._last_emit = -1.0
        monitor._end_ns = 40 * MS
        monitor._n_windows = 40
        monitor.on_window(
            index=0, t_end_ns=1 * MS, shard_wall_s={0: 0.0},
            shard_events={0: 0}, events_total=0,
        )
        [beat] = [p for p in monitor.emitted if p["type"] == "heartbeat"]
        assert beat["eta_s"] is None
        assert beat["elapsed_s"] == 0.0

    def test_eta_finite_with_zero_windows_and_end(self):
        # A degenerate run (n_windows == 0, end_ns == 0) must not divide
        # by zero, report inf, or flood every window as "the last one".
        clock = iter(float(i) for i in range(1, 100)).__next__
        monitor = RunMonitor("-", interval_s=100.0, clock=clock)
        monitor._fh = None
        monitor._t0 = 0.0
        monitor._last_emit = -100.0
        monitor._end_ns = 0
        monitor._n_windows = 0
        for i in range(5):
            monitor.on_window(
                index=i, t_end_ns=0, shard_wall_s={}, shard_events={},
                events_total=0,
            )
        beats = [p for p in monitor.emitted if p["type"] == "heartbeat"]
        assert len(beats) == 1  # interval throttling still applies
        assert beats[0]["eta_s"] == 0.0  # frac clamps to 1.0: done
        assert beats[0]["straggler"] is None
        for beat in beats:
            assert beat["eta_s"] is None or math.isfinite(beat["eta_s"])

    def test_eta_clamped_when_sim_time_overshoots_end(self):
        # The final window can overshoot end_ns (burst tails); frac must
        # clamp to 1.0 so the ETA lands at 0, never negative.
        clock = iter([5.0]).__next__
        monitor = RunMonitor("-", interval_s=1.0, clock=clock)
        monitor._fh = None
        monitor._t0 = 0.0
        monitor._last_emit = -1.0
        monitor._end_ns = 40 * MS
        monitor._n_windows = 40
        monitor.on_window(
            index=39, t_end_ns=41 * MS, shard_wall_s={0: 1.0},
            shard_events={0: 10}, events_total=10,
        )
        [beat] = [p for p in monitor.emitted if p["type"] == "heartbeat"]
        assert beat["eta_s"] == 0.0

    def test_resolve_monitor_variants(self):
        assert resolve_monitor(None) is None
        assert resolve_monitor(False) is None
        assert isinstance(resolve_monitor(True), RunMonitor)
        assert isinstance(resolve_monitor("/tmp/x.jsonl"), RunMonitor)
        monitor = RunMonitor("-")
        assert resolve_monitor(monitor) is monitor
        with pytest.raises(TypeError, match="monitor"):
            resolve_monitor(42)


class TestLaneMetadata:
    def test_helper_shapes(self):
        events = lane_metadata_events(7, "my proc", {0: "a", 2: "b"})
        assert events[0] == {
            "name": "process_name", "ph": "M", "ts": 0.0,
            "pid": 7, "tid": 0, "args": {"name": "my proc"},
        }
        assert [e["args"]["name"] for e in events[1:]] == ["a", "b"]

    def test_chrome_trace_sink_lane_override(self):
        from repro.telemetry.sinks import ChromeTraceSink

        sink = ChromeTraceSink(pid=SHARD_PID_BASE + 3, process_name="shard 3")
        events = sink.trace_events()
        meta = [e for e in events if e["name"] == "process_name"]
        assert meta == [{
            "name": "process_name", "ph": "M", "ts": 0.0,
            "pid": SHARD_PID_BASE + 3, "tid": 0,
            "args": {"name": "shard 3"},
        }]


class TestReportsAndDashboard:
    def test_fleet_report_gains_loop_health_columns(self):
        from repro.experiments.datacenter import format_fleet_report

        result = run_datacenter(
            frontend_config(n_shards=2), jobs=1, profile=True,
        )
        report = format_fleet_report(result)
        assert "loop ev/s" in report
        assert "peak RSS (MB)" in report
        # profiled runs fill the columns with real numbers, not dashes
        shard_lines = [
            line for line in report.splitlines()
            if line.startswith("0 ") or line.startswith("1 ")
        ]
        assert shard_lines
        assert not any("| -" in line for line in shard_lines)

    def test_dashboard_imbalance_panel_and_trace_links(self):
        from repro.viz import dashboard_from_datacenter

        result = run_datacenter(
            frontend_config(n_shards=2), jobs=1,
            record_timeseries="coarse", trace_requests=64,
            profile_fleet=True,
        )
        page = dashboard_from_datacenter(
            result, title="fleet", trace_path="fleet_trace.json"
        )
        assert "Shard wall time (imbalance)" in page
        assert "shard 0" in page and "shard 1" in page
        assert "traced request" in page
        assert 'href="fleet_trace.json"' in page
        assert result.trace.traces[0].trace_id in page
