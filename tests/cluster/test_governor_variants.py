"""Tests for the non-default governor choices (powersave, ladder)."""

import pytest

from repro.cluster.policies import PolicyConfig
from repro.cluster.simulation import ExperimentConfig, run_experiment
from repro.oskernel.cpufreq import PowersaveGovernor
from repro.oskernel.cpuidle import LadderGovernor
from repro.sim.units import MS


def run(policy, rps=24_000, app="apache"):
    return run_experiment(
        ExperimentConfig(
            app=app, policy=policy, target_rps=rps,
            warmup_ns=10 * MS, measure_ns=60 * MS, drain_ns=60 * MS, seed=4,
        )
    )


class TestPowersavePolicy:
    def test_powersave_pins_minimum_frequency(self):
        from repro.cluster.node import ServerNode
        from repro.sim import RngRegistry, Simulator

        sim = Simulator()
        node = ServerNode(
            sim, "server",
            PolicyConfig("powersave", governor="powersave"),
            "apache", RngRegistry(1),
        )
        assert isinstance(node.governor, PowersaveGovernor)
        node.start()
        sim.run()
        assert node.package.pstate_index == node.package.pstates.max_index

    def test_powersave_cheapest_but_slowest(self):
        perf = run("perf")
        powersave = run(PolicyConfig("powersave", governor="powersave"))
        assert powersave.energy.energy_j < perf.energy.energy_j
        assert powersave.latency.p95_ns > 2 * perf.latency.p95_ns


class TestLadderPolicy:
    def ladder_policy(self):
        return PolicyConfig(
            "ond.ladder", governor="ondemand", cstates=True,
            cpuidle_governor="ladder",
        )

    def test_ladder_governor_selected(self):
        from repro.cluster.node import ServerNode
        from repro.sim import RngRegistry, Simulator

        node = ServerNode(
            Simulator(), "server", self.ladder_policy(), "apache", RngRegistry(1)
        )
        assert isinstance(node.cpuidle.governor, LadderGovernor)

    def test_ladder_still_reaches_deep_states(self):
        result = run(self.ladder_policy())
        assert result.cstate_entries.get("C6", 0) > 0

    def test_ladder_saves_energy_vs_no_cstates(self):
        ond = run("ond")
        ladder = run(self.ladder_policy())
        assert ladder.energy.energy_j < ond.energy.energy_j

    def test_menu_vs_ladder_both_viable(self):
        menu = run("ond.idle")
        ladder = run(self.ladder_policy())
        # Ladder promotes step-wise, so it reaches C6 later and saves less
        # than menu's prediction-based selection — but stays in its regime.
        ratio = ladder.energy.energy_j / menu.energy.energy_j
        assert 0.75 < ratio < 1.75


class TestValidation:
    def test_bad_cpuidle_governor_rejected(self):
        with pytest.raises(ValueError):
            PolicyConfig("x", cpuidle_governor="turbo")

    def test_powersave_accepted(self):
        assert PolicyConfig("x", governor="powersave").governor == "powersave"
