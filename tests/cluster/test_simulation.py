"""Tests for the cluster experiment runner."""

import pytest

from repro.cluster.simulation import Cluster, ExperimentConfig, run_experiment
from repro.sim.units import MS


def quick_config(**overrides):
    defaults = dict(
        app="apache",
        policy="perf",
        target_rps=24_000,
        warmup_ns=10 * MS,
        measure_ns=50 * MS,
        drain_ns=40 * MS,
        seed=3,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestClusterBuild:
    def test_star_topology(self):
        cluster = Cluster(quick_config())
        assert len(cluster.clients) == 3
        assert sorted(cluster.switch.known_destinations) == [
            "client0", "client1", "client2", "server",
        ]

    def test_burst_size_defaults_per_app(self):
        assert Cluster(quick_config(app="apache")).burst_size == 200
        assert Cluster(quick_config(app="memcached")).burst_size == 75
        assert Cluster(quick_config(burst_size=42)).burst_size == 42


class TestRun:
    def test_measure_window_accounting(self):
        result = run_experiment(quick_config())
        assert result.responses_received > 0
        assert result.incomplete == 0  # drain long enough at this load
        assert result.achieved_rps == pytest.approx(24_000, rel=0.2)
        assert result.meets_sla

    def test_energy_positive_and_power_sane(self):
        result = run_experiment(quick_config())
        assert result.energy.energy_j > 0
        # A 4-core package tops out at ~80 W busy; idle-at-P0 floor ~44 W.
        assert 10 < result.avg_power_w < 85

    def test_ncap_stats_populated_for_ncap_policy(self):
        result = run_experiment(quick_config(policy="ncap.cons"))
        assert "it_high_posts" in result.ncap_stats

    def test_ncap_stats_empty_for_conventional(self):
        result = run_experiment(quick_config(policy="perf"))
        assert result.ncap_stats == {}

    def test_cstate_entries_only_with_cstates(self):
        with_idle = run_experiment(quick_config(policy="perf.idle"))
        without = run_experiment(quick_config(policy="perf"))
        assert sum(with_idle.cstate_entries.values()) > 0
        assert sum(without.cstate_entries.values()) == 0

    def test_traces_only_when_requested(self):
        plain = run_experiment(quick_config())
        traced = run_experiment(quick_config(collect_traces=True))
        assert plain.trace is None
        assert traced.trace is not None
        assert traced.trace.counter_channel("server.rx_bytes").total > 0
        assert len(traced.trace.event_channel("server.cpu.util")) > 0

    def test_determinism_same_seed(self):
        a = run_experiment(quick_config(policy="ncap.cons", seed=11))
        b = run_experiment(quick_config(policy="ncap.cons", seed=11))
        assert a.latency.p95_ns == b.latency.p95_ns
        assert a.energy.energy_j == pytest.approx(b.energy.energy_j, rel=1e-12)
        assert a.ncap_stats == b.ncap_stats

    def test_different_seeds_differ(self):
        a = run_experiment(quick_config(seed=1))
        b = run_experiment(quick_config(seed=2))
        assert a.latency.p95_ns != b.latency.p95_ns

    def test_normalized_latency_uses_app_sla(self):
        result = run_experiment(quick_config())
        norm = result.normalized_latency
        assert norm["p95"] == pytest.approx(
            result.latency.p95_ns / result.sla_ns
        )

    def test_clients_stop_at_window_end(self):
        config = quick_config()
        cluster = Cluster(config)
        cluster.run()
        sent_after = sum(
            1 for c in cluster.clients for s, _ in c.rtts
            if s >= config.warmup_ns + config.measure_ns
        )
        assert sent_after == 0


class TestKeepServer:
    def test_server_dropped_by_default(self):
        result = run_experiment(quick_config())
        assert result.server is None

    def test_server_kept_on_request(self):
        result = run_experiment(quick_config(), keep_server=True)
        assert result.server is not None
        assert result.server.name == "server"

    def test_result_picklable_without_server(self):
        import pickle

        result = run_experiment(quick_config())
        clone = pickle.loads(pickle.dumps(result))
        assert clone.latency == result.latency
        assert clone.energy.energy_j == result.energy.energy_j

    def test_simulate_then_collect_split(self):
        cluster = Cluster(quick_config())
        cluster.simulate()
        dropped = cluster.collect()
        kept = cluster.collect(keep_server=True)
        assert dropped.server is None
        assert kept.server is cluster.server
        assert dropped.latency == kept.latency
