"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_policies_command(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        for name in ("perf", "ond.idle", "ncap.cons", "ncap.aggr"):
            assert name in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--policy", "turbo"])

    def test_fig_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig", "3"])  # not a repro target


class TestRunCommand:
    def test_run_prints_metrics(self, capsys):
        # Tiny but real end-to-end run through the CLI path.
        code = main([
            "--settings", "quick", "--seed", "2",
            "run", "--app", "memcached", "--policy", "ncap.aggr", "--rps", "20000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ncap.aggr" in out
        assert "p95 (ms)" in out
        assert "NCAP posts" in out

    def test_load_presets_resolve(self, capsys):
        code = main([
            "run", "--app", "apache", "--policy", "perf", "--load", "low",
        ])
        assert code == 0
        assert "24K" in capsys.readouterr().out

    def test_fig1_fast_path(self, capsys):
        assert main(["fig", "1"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_export_trace(self, capsys, tmp_path):
        out = os.path.join(str(tmp_path), "series")
        code = main([
            "--settings", "quick",
            "export-trace", "--app", "apache", "--policy", "ond.idle",
            "--out", out,
        ])
        assert code == 0
        assert os.path.isdir(out)
        files = os.listdir(out)
        assert any("freq" in f for f in files)
        assert any("rx_bytes" in f for f in files)


def _fast_suite():
    """A synthetic one-scenario suite so check-path tests stay cheap."""
    from repro.harness.bench import BenchScenario, BenchSuite, ScenarioStats
    from repro.sim import Simulator

    def scenario(profiler):
        sim = Simulator()
        if profiler is not None:
            sim.set_profiler(profiler)
        for i in range(2_000):
            sim.schedule(i, lambda: None)
        sim.run()
        return ScenarioStats(events=sim.events_executed, sim_ns=sim.now)

    return BenchSuite(
        name="tinycli", description="cli fixture",
        scenarios=(BenchScenario("burst", scenario, "2K events"),),
        repeats=2,
    )


class TestBenchCommand:
    def test_micro_suite_writes_valid_bench_json(self, capsys, tmp_path):
        from repro.harness.bench import load_bench_json

        out = os.path.join(str(tmp_path), "BENCH_micro.json")
        assert main(["bench", "micro", "--repeats", "1", "--out", out]) == 0
        payload = load_bench_json(out)  # schema-validates on load
        assert payload["suite"] == "micro"
        assert set(payload["scenarios"]) == {
            "event_kernel", "cancel_churn", "chained_timers", "burst_fanout",
            "nic_rx_path", "small_cluster",
        }
        text = capsys.readouterr().out
        assert "top handlers" in text
        assert "wrote " + out in text

    def test_default_output_name(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setitem(_suites(), "tinycli", _fast_suite())
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "tinycli"]) == 0
        assert os.path.exists(str(tmp_path / "BENCH_tinycli.json"))

    def test_unknown_suite_exits_2(self, capsys):
        assert main(["bench", "nope"]) == 2
        assert "unknown bench suite" in capsys.readouterr().err

    def test_check_lifecycle(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setitem(_suites(), "tinycli", _fast_suite())
        out = os.path.join(str(tmp_path), "BENCH_tinycli.json")
        base = os.path.join(str(tmp_path), "baseline.json")
        common = ["bench", "tinycli", "--out", out, "--baseline", base]

        # 1. No baseline yet: --check is an error, not a silent pass.
        assert main(common + ["--check"]) == 2
        assert "no baseline" in capsys.readouterr().err

        # 2. Seed the baseline.
        assert main(common + ["--update-baseline"]) == 0
        assert os.path.exists(base)

        # 3. Unmodified rerun passes.  The fixture scenario runs in tens of
        #    microseconds, where timer noise dwarfs the 18% wall tolerance
        #    that guards real suites, so scale it up; the exit-code
        #    plumbing, not the tolerance value, is under test here.
        assert main(common + ["--check", "--tolerance-scale", "50"]) == 0
        assert "OK" in capsys.readouterr().out

        # 4. Make the baseline pretend it was twice as fast: flagged.
        with open(base, "r", encoding="utf-8") as fh:
            doctored = json.load(fh)
        wall = doctored["scenarios"]["burst"]["wall_s"]
        for key in ("median", "min"):
            wall[key] /= 1e3
        wall["samples"] = [s / 1e3 for s in wall["samples"]]
        with open(base, "w", encoding="utf-8") as fh:
            json.dump(doctored, fh)
        assert main(common + ["--check"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

        # 5. A corrupt baseline is an error, not a pass or a crash.
        with open(base, "w", encoding="utf-8") as fh:
            fh.write("{}")
        assert main(common + ["--check"]) == 2
        assert "bad baseline" in capsys.readouterr().err


def _suites():
    from repro.harness.suites import SUITES

    return SUITES


class TestProfileCommand:
    def test_profile_reports_and_exports(self, capsys, tmp_path):
        stacks = os.path.join(str(tmp_path), "stacks.txt")
        trace = os.path.join(str(tmp_path), "trace.json")
        code = main([
            "--settings", "quick", "profile", "headline",
            "--top", "5", "--stacks-out", stacks, "--trace-out", trace,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Loop health" in out
        assert "attributed share" in out
        with open(stacks, encoding="utf-8") as fh:
            lines = fh.read().strip().splitlines()
        assert lines and all(int(l.rpartition(" ")[2]) >= 1 for l in lines)
        with open(trace, encoding="utf-8") as fh:
            events = json.load(fh)["traceEvents"]
        assert any(e.get("pid") == 2 for e in events)
