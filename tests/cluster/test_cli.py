"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_policies_command(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        for name in ("perf", "ond.idle", "ncap.cons", "ncap.aggr"):
            assert name in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--policy", "turbo"])

    def test_fig_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig", "3"])  # not a repro target


class TestRunCommand:
    def test_run_prints_metrics(self, capsys):
        # Tiny but real end-to-end run through the CLI path.
        code = main([
            "--settings", "quick", "--seed", "2",
            "run", "--app", "memcached", "--policy", "ncap.aggr", "--rps", "20000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ncap.aggr" in out
        assert "p95 (ms)" in out
        assert "NCAP posts" in out

    def test_load_presets_resolve(self, capsys):
        code = main([
            "run", "--app", "apache", "--policy", "perf", "--load", "low",
        ])
        assert code == 0
        assert "24K" in capsys.readouterr().out

    def test_fig1_fast_path(self, capsys):
        assert main(["fig", "1"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_export_trace(self, capsys, tmp_path):
        import os

        out = os.path.join(str(tmp_path), "series")
        code = main([
            "--settings", "quick",
            "export-trace", "--app", "apache", "--policy", "ond.idle",
            "--out", out,
        ])
        assert code == 0
        assert os.path.isdir(out)
        files = os.listdir(out)
        assert any("freq" in f for f in files)
        assert any("rx_bytes" in f for f in files)
