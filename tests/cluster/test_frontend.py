"""Tests for the frontend load-balancer tier: spray policies, the
coordinator-side planner, and the per-server frontend port."""

import random

import pytest

from repro.cluster.frontend import (
    ConsistentHashSpray,
    FrontendConfig,
    FrontendPlanner,
    FrontendPort,
    LeastLoadedSpray,
    PowerOfTwoSpray,
    SPRAY_POLICIES,
    make_spray,
)
from repro.sim.units import MS


class TestFrontendConfig:
    def test_defaults_valid(self):
        config = FrontendConfig()
        assert config.spray in SPRAY_POLICIES

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(spray="round-robin"),
            dict(n_users=0),
            dict(burst_size=0),
            dict(intra_burst_gap_ns=-1),
            dict(dispatch_latency_ns=0),
            dict(hash_replicas=0),
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FrontendConfig(**kwargs)


class TestSprayPolicies:
    def test_registry_covers_all_names(self):
        for name in SPRAY_POLICIES:
            spray = make_spray(name, 4, random.Random(1), 64)
            assert 0 <= spray.choose(42, [0, 0, 0, 0]) < 4

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_spray("bogus", 4, random.Random(1), 64)

    def test_consistent_hash_is_deterministic_and_sticky(self):
        a = ConsistentHashSpray(8, random.Random(1), 64)
        b = ConsistentHashSpray(8, random.Random(99), 64)
        for user in range(200):
            # Same ring regardless of RNG; same user -> same server.
            assert a.choose(user, [0] * 8) == b.choose(user, [0] * 8)
            assert a.choose(user, [5] * 8) == a.choose(user, [0] * 8)

    def test_consistent_hash_spreads_users(self):
        spray = ConsistentHashSpray(8, random.Random(1), 64)
        servers = {spray.choose(u, [0] * 8) for u in range(500)}
        assert len(servers) == 8

    def test_least_loaded_picks_minimum(self):
        spray = LeastLoadedSpray(4, random.Random(1), 64)
        assert spray.choose(0, [3, 1, 2, 5]) == 1

    def test_least_loaded_breaks_ties_by_index(self):
        spray = LeastLoadedSpray(4, random.Random(1), 64)
        assert spray.choose(0, [2, 1, 1, 1]) == 1

    def test_po2_picks_less_loaded_of_two(self):
        spray = PowerOfTwoSpray(4, random.Random(7), 64)
        est = [100, 100, 100, 0]
        # Over many draws the empty server must win every time it is
        # sampled; it is sampled with probability 1/2 per draw.
        wins = sum(spray.choose(u, est) == 3 for u in range(100))
        assert wins >= 30

    def test_po2_single_server(self):
        spray = PowerOfTwoSpray(1, random.Random(7), 64)
        assert spray.choose(0, [9]) == 0


def plan_key(dispatches):
    """Semantic identity of a plan — everything but the process-global
    ``frame_id`` (allocated per Frame(), never read by the simulation)."""
    return [
        (d.send_ns, d.server_index, d.frame.src, d.frame.dst,
         d.frame.req_id, d.frame.payload_bytes, d.frame.payload_prefix,
         d.frame.created_ns)
        for d in dispatches
    ]


def make_planner(**overrides):
    frontend = FrontendConfig(
        n_users=1_000, spray="po2", burst_size=50,
        intra_burst_gap_ns=1_000, dispatch_latency_ns=1 * MS,
    )
    params = dict(
        n_servers=4, total_rps=50_000.0, app="memcached",
        warmup_ns=5 * MS, measure_ns=20 * MS, seed=3,
    )
    params.update(overrides)
    return FrontendPlanner(frontend, **params)


class TestFrontendPlanner:
    def test_plan_is_a_pure_function_of_the_seed(self):
        a, b = make_planner(), make_planner()
        da = plan_key(a.plan_until(10 * MS))
        db = plan_key(b.plan_until(10 * MS))
        assert da == db
        assert plan_key(make_planner(seed=4).plan_until(10 * MS)) != da

    def test_plan_independent_of_window_slicing(self):
        whole = make_planner().plan_until(10 * MS)
        sliced_planner = make_planner()
        sliced = []
        for boundary in range(1, 11):
            sliced.extend(sliced_planner.plan_until(boundary * MS))
        assert plan_key(sliced) == plan_key(whole)

    def test_sends_respect_lookahead(self):
        planner = make_planner()
        for d in planner.plan_until(10 * MS):
            assert d.send_ns >= 1 * MS  # decision + dispatch latency

    def test_no_sends_after_traffic_end(self):
        planner = make_planner()
        dispatches = planner.plan_until(60 * MS)
        end = 5 * MS + 20 * MS
        assert dispatches
        assert all(d.send_ns < end for d in dispatches)
        assert planner.done

    def test_send_times_non_decreasing(self):
        sends = [d.send_ns for d in make_planner().plan_until(20 * MS)]
        assert sends == sorted(sends)

    def test_dispatch_accounting(self):
        planner = make_planner()
        dispatches = planner.plan_until(30 * MS)
        assert sum(planner.dispatched) == len(dispatches)
        in_measure = sum(
            1 for d in dispatches if 5 * MS <= d.send_ns < 25 * MS
        )
        assert sum(planner.dispatched_in_measure) == in_measure

    def test_observe_drops_visible_buckets(self):
        planner = make_planner()
        planner.plan_until(5 * MS)
        est_before = list(planner._est)
        assert sum(est_before) > 0  # unseen dispatches inflate the estimate
        # After observing a boundary beyond every planned send, the
        # estimate collapses to exactly the installed view.
        planner.observe(30 * MS, [7, 0, 0, 0])
        assert planner._est == [7, 0, 0, 0]

    def test_memcached_frames_carry_keys(self):
        d = make_planner().plan_until(1 * MS)[0]
        assert d.frame.dst == f"server{d.server_index}"
        assert d.frame.req_id is not None

    def test_least_loaded_balances_uniform_servers(self):
        planner = make_planner(n_servers=4)
        planner._spray = LeastLoadedSpray(4, random.Random(1), 64)
        planner.plan_until(20 * MS)
        low, high = min(planner.dispatched), max(planner.dispatched)
        assert high - low <= 1  # perfect rotation under equal estimates


class TestFrontendPort:
    def test_scalar_and_bulk_inject_book_identical_sends(self):
        from repro.net.link import Link
        from repro.net.packet import make_http_request, make_response
        from repro.sim.kernel import Simulator
        from repro.sim.units import US, gbps

        def run(bulk):
            sim = Simulator()
            port = FrontendPort(sim, "frontend0", bulk=bulk)

            class Echo:  # immediately bounce a response back
                name = "server0"

                def __init__(self):
                    self.link_port = None

                def receive_frame(self, frame):
                    response = make_response(
                        "server0", "frontend0", 200, req_id=frame.req_id
                    )
                    sim.schedule(1000, self.link_port.send, response)

            echo = Echo()
            link = Link(sim, gbps(10), 1 * US)
            link.attach(port, echo)
            port.attach_port(link.endpoint_port(port))
            echo.link_port = link.endpoint_port(echo)
            frames = [
                make_http_request("frontend0", "server0", req_id=i)
                for i in range(1, 4)
            ]
            port.inject([(10_000 * i, f) for i, f in enumerate(frames, 1)])
            sim.run()
            return port

        bulk, scalar = run(True), run(False)
        assert bulk.requests_sent == scalar.requests_sent == 3
        assert bulk.responses_received == scalar.responses_received == 3
        assert bulk.rtts == scalar.rtts
        assert bulk.outstanding == scalar.outstanding == 0
        assert bulk.sent_in_window(0, 100_000) == 3
        assert bulk.rtts_in_window(15_000, 25_000) == [
            rtt for send, rtt in bulk.rtts if send == 20_000
        ]
