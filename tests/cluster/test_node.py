"""Tests for server-node wiring."""

import pytest

from repro.apps.apache import ApacheApp
from repro.apps.memcached import MemcachedApp
from repro.cluster.node import ServerNode
from repro.oskernel.cpufreq import OndemandGovernor, PerformanceGovernor
from repro.sim import RngRegistry, Simulator, TraceRecorder


def make_node(policy="perf", app="apache", trace=None):
    sim = Simulator()
    node = ServerNode(
        sim, "server", policy, app, RngRegistry(1), trace=trace
    )
    return sim, node


class TestWiring:
    def test_perf_has_no_cpuidle_or_ncap(self):
        sim, node = make_node("perf")
        assert isinstance(node.governor, PerformanceGovernor)
        assert node.cpuidle is None
        assert node.ncap_hw is None and node.ncap_sw is None
        assert node.engine is None

    def test_ond_idle_has_both_governors(self):
        sim, node = make_node("ond.idle")
        assert isinstance(node.governor, OndemandGovernor)
        assert node.cpuidle is not None
        assert node.scheduler.idle_hook is not None

    def test_ncap_hw_wiring(self):
        sim, node = make_node("ncap.cons")
        assert node.ncap_hw is not None
        assert node.ncap_sw is None
        assert node.ncap_ext is not None
        assert node.ncap_ext.on_icr in node.driver.icr_hooks
        assert node.engine is node.ncap_hw.engine
        # ReqMonitor is tapped into the NIC hardware rx path.
        assert node.ncap_hw.req_monitor.inspect in node.nic.rx_hw_taps

    def test_ncap_sw_wiring(self):
        sim, node = make_node("ncap.sw")
        assert node.ncap_sw is not None
        assert node.ncap_hw is None
        assert node.driver.extra_rx_cycles_per_packet > 0
        assert node.engine is node.ncap_sw.engine

    def test_apps_selected_by_name(self):
        assert isinstance(make_node(app="apache")[1].app, ApacheApp)
        assert isinstance(make_node(app="memcached")[1].app, MemcachedApp)
        with pytest.raises(ValueError):
            make_node(app="nginx")

    def test_packet_sink_is_the_app(self):
        sim, node = make_node()
        assert node.driver.packet_sink == node.app.on_packet

    def test_sysfs_exposes_ncap_for_hw_policy(self):
        sim, node = make_node("ncap.cons")
        assert node.sysfs.exists("/sys/class/net/server/ncap/templates")

    def test_trace_wires_cstate_channels(self):
        trace = TraceRecorder()
        sim, node = make_node("ond.idle", trace=trace)
        assert trace.has_channel("server.core0.cstate")
        assert trace.has_channel("server.cpu.freq_ghz")

    def test_start_pins_performance_at_p0(self):
        sim, node = make_node("perf")
        node.package.set_pstate(14)
        sim.run()
        node.start()
        sim.run()
        assert node.package.pstate_index == 0

    def test_stop_halts_ncap(self):
        sim, node = make_node("ncap.cons")
        node.start()
        sim.run(until=1_000_000)
        ticks = node.engine.ticks
        node.stop()
        sim.run(until=3_000_000)
        assert node.engine.ticks == ticks

    def test_nic_dma_override(self):
        sim = Simulator()
        node = ServerNode(
            sim, "server", "perf", "apache", RngRegistry(1),
            nic_dma_latency_ns=50_000,
        )
        assert node.nic.dma_latency_ns == 50_000
