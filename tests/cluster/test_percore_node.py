"""Tests for the per-core DVFS / multi-queue extension (Section 7)."""

import pytest

from repro.cluster.percore_node import PerCoreServerNode
from repro.cpu.multidomain import MultiDomainProcessor
from repro.cpu.config import ProcessorConfig
from repro.net import make_http_request
from repro.net.multiqueue import MultiQueueNIC
from repro.sim import RngRegistry, Simulator
from repro.sim.units import MS


class SinkPort:
    queue_depth = 0

    def send(self, frame):
        pass


class TestMultiDomainProcessor:
    def test_unique_core_ids(self):
        sim = Simulator()
        proc = MultiDomainProcessor(sim, ProcessorConfig(n_cores=4))
        assert [c.core_id for c in proc.cores] == [0, 1, 2, 3]

    def test_domains_retune_independently(self):
        sim = Simulator()
        proc = MultiDomainProcessor(sim, ProcessorConfig(n_cores=2))
        proc.domain_of(0).set_pstate(14)
        sim.run()
        assert proc.domain_of(0).pstate_index == 14
        assert proc.domain_of(1).pstate_index == 0

    def test_broadcast_set_pstate(self):
        sim = Simulator()
        proc = MultiDomainProcessor(sim, ProcessorConfig(n_cores=3))
        proc.set_pstate(7)
        sim.run()
        assert all(d.pstate_index == 7 for d in proc.domains)

    def test_at_max_requires_all_domains(self):
        sim = Simulator()
        proc = MultiDomainProcessor(sim, ProcessorConfig(n_cores=2))
        assert proc.at_max_performance
        proc.domain_of(1).set_pstate(5)
        assert not proc.at_max_performance

    def test_energy_report_merges_domains(self):
        sim = Simulator()
        proc = MultiDomainProcessor(sim, ProcessorConfig(n_cores=4))
        sim.schedule(MS, lambda: None)
        sim.run()
        report = proc.energy_report()
        assert report.residency_ns["idle"] == 4 * MS


class TestMultiQueueNIC:
    def test_flow_affinity_stable(self):
        sim = Simulator()
        nic = MultiQueueNIC(sim, n_queues=4)
        a = nic.queue_for(make_http_request("client0", "server"))
        b = nic.queue_for(make_http_request("client0", "server"))
        assert a is b

    def test_different_flows_can_spread(self):
        sim = Simulator()
        nic = MultiQueueNIC(sim, n_queues=4)
        queues = {
            nic.queue_for(make_http_request(f"client{i}", "server")).queue_id
            for i in range(16)
        }
        assert len(queues) > 1

    def test_rx_lands_on_one_queue(self):
        sim = Simulator()
        nic = MultiQueueNIC(sim, n_queues=4)
        nic.receive_frame(make_http_request("client0", "server"))
        sim.run()
        pending = [q.rx_pending for q in nic.queues]
        assert sum(pending) == 1

    def test_queue_taps_see_only_their_flow(self):
        sim = Simulator()
        nic = MultiQueueNIC(sim, n_queues=4)
        seen = {i: [] for i in range(4)}
        for q in nic.queues:
            q.rx_hw_taps.append(lambda f, qid=q.queue_id: seen[qid].append(f))
        frame = make_http_request("clientX", "server")
        target = nic.queue_for(frame).queue_id
        nic.receive_frame(frame)
        sim.run()
        assert len(seen[target]) == 1
        assert all(not v for k, v in seen.items() if k != target)

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiQueueNIC(Simulator(), n_queues=0)


class TestPerCoreServerNode:
    def make_node(self, app="memcached"):
        sim = Simulator()
        node = PerCoreServerNode(sim, "server", app, RngRegistry(2))
        node.attach_port(SinkPort())
        node.start()
        return sim, node

    def test_one_queue_and_domain_per_core(self):
        sim, node = self.make_node()
        n = len(node.processor.cores)
        assert len(node.nic.queues) == n
        assert len(node.ncap_hw) == n
        assert len(node.ondemand) == n

    def test_burst_boosts_only_target_domain(self):
        sim, node = self.make_node()
        for domain in node.processor.domains:
            domain.set_pstate(14)
        # Bounded run: the node's periodic governors/ticks never drain the
        # event heap, so an unbounded run() would spin forever.
        sim.run(until=int(0.1 * MS))
        # One flow -> one queue -> one domain boosted.
        frame = make_http_request("client0", "server", req_id=1)
        target = node.nic.queue_for(frame).queue_id
        base = int(0.2 * MS)
        for i in range(80):
            sim.schedule_at(
                base + i * 1_000, node.nic.receive_frame,
                make_http_request("client0", "server", req_id=i),
            )
        sim.run(until=int(0.8 * MS))
        assert node.processor.domains[target].effective_target_index == 0
        others = [
            d.effective_target_index
            for i, d in enumerate(node.processor.domains) if i != target
        ]
        assert all(idx == 14 for idx in others)

    def test_requests_complete_end_to_end(self):
        sim, node = self.make_node()
        for i in range(50):
            sim.schedule_at(
                i * 10_000, node.nic.receive_frame,
                make_http_request("client0", "server", req_id=i),
            )
        sim.run(until=20 * MS)
        assert node.app.responses_sent == 50

    def test_affinity_hint_reset_after_delivery(self):
        sim, node = self.make_node()
        node.nic.receive_frame(make_http_request("client0", "server", req_id=1))
        sim.run(until=5 * MS)
        assert node.app.affinity_hint is None

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            PerCoreServerNode(Simulator(), "s", "nginx", RngRegistry(1))
