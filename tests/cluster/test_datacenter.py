"""Tests for the multi-server (datacenter) cluster builder."""

import pytest

from repro.cluster.datacenter import (
    DatacenterCluster,
    DatacenterConfig,
    run_datacenter,
)
from repro.sim.units import MS


def tiny_config(**overrides):
    defaults = dict(
        app="apache",
        policy="perf",
        n_servers=2,
        load_shares=(0.7, 0.3),
        total_rps=40_000,
        clients_per_server=2,
        warmup_ns=5 * MS,
        measure_ns=40 * MS,
        drain_ns=40 * MS,
        seed=9,
    )
    defaults.update(overrides)
    return DatacenterConfig(**defaults)


class TestValidation:
    def test_share_count_must_match_servers(self):
        with pytest.raises(ValueError):
            tiny_config(n_servers=3)

    def test_shares_must_be_positive(self):
        with pytest.raises(ValueError):
            tiny_config(load_shares=(1.0, 0.0))


class TestTopology:
    def test_all_nodes_routable(self):
        cluster = DatacenterCluster(tiny_config())
        expected = {"server0", "server1", "client0_0", "client0_1",
                    "client1_0", "client1_1"}
        assert set(cluster.switch.known_destinations) == expected

    def test_load_split_by_share(self):
        cluster = DatacenterCluster(tiny_config())
        p0 = cluster.clients["server0"][0].burst_period_ns
        p1 = cluster.clients["server1"][0].burst_period_ns
        # 70/30 split: server1's clients burst ~2.33x less often.
        assert p1 / p0 == pytest.approx(7 / 3, rel=0.01)


class TestRun:
    def test_per_server_outcomes(self):
        result = run_datacenter(tiny_config())
        assert len(result.servers) == 2
        hot, cold = result.servers
        assert hot.target_rps > cold.target_rps
        assert hot.utilization > cold.utilization
        assert hot.latency.count > 0 and cold.latency.count > 0
        assert result.total_energy_j == pytest.approx(
            sum(s.energy.energy_j for s in result.servers)
        )

    def test_servers_isolated(self):
        # Traffic for one server never shows up at the other.
        cluster = DatacenterCluster(tiny_config())
        cluster.run()
        s0, s1 = cluster.servers
        sent0 = sum(c.requests_sent for c in cluster.clients["server0"])
        sent1 = sum(c.requests_sent for c in cluster.clients["server1"])
        assert abs(s0.app.requests_received - sent0) < 30
        assert abs(s1.app.requests_received - sent1) < 30

    def test_ncap_policy_runs_fleetwide(self):
        result = run_datacenter(tiny_config(policy="ncap.cons"))
        assert all(s.latency.count > 0 for s in result.servers)
