"""Tests for conservative time-window sharded execution.

The headline contract: a sharded run — any shard count, serial or in
worker processes — merges to a fleet ResultRecord byte-identical (JSON
and sha256) to the single-process run.
"""

import hashlib
import json
from dataclasses import replace

import pytest

from repro.cluster.datacenter import DatacenterConfig, run_datacenter
from repro.cluster.frontend import FrontendConfig
from repro.cluster.sharding import (
    ShardedDatacenterRun,
    conservative_window_ns,
    shard_plan,
)
from repro.sim.units import MS


def record_sha(result):
    payload = json.dumps(
        result.record.to_json_dict(), sort_keys=True
    ).encode()
    return hashlib.sha256(payload).hexdigest()


def client_config(**overrides):
    base = dict(
        app="apache",
        policy="ncap.cons",
        n_servers=4,
        total_rps=60_000.0,
        clients_per_server=2,
        warmup_ns=5 * MS,
        measure_ns=20 * MS,
        drain_ns=15 * MS,
        seed=7,
    )
    base.update(overrides)
    return DatacenterConfig(**base)


def frontend_config(**overrides):
    base = dict(
        app="memcached",
        policy="ncap.cons",
        n_servers=4,
        load_shares="uniform",
        total_rps=80_000.0,
        warmup_ns=5 * MS,
        measure_ns=20 * MS,
        drain_ns=15 * MS,
        seed=11,
        frontend=FrontendConfig(
            n_users=5_000, spray="po2", burst_size=75,
            intra_burst_gap_ns=1_000, dispatch_latency_ns=1 * MS,
        ),
    )
    base.update(overrides)
    return DatacenterConfig(**base)


class TestShardPlan:
    def test_contiguous_and_exhaustive(self):
        plan = shard_plan(10, 3)
        assert plan == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]

    def test_one_shard_is_everything(self):
        assert shard_plan(4, 1) == [[0, 1, 2, 3]]

    def test_one_server_per_shard(self):
        assert shard_plan(3, 3) == [[0], [1], [2]]

    def test_more_shards_than_servers_rejected(self):
        with pytest.raises(ValueError):
            shard_plan(2, 3)


class TestWindow:
    def test_client_mode_window_is_min_burst_period(self):
        config = client_config()
        w = conservative_window_ns(config)
        assert w >= 1
        # The busiest server (largest share) has the shortest period.
        from repro.apps.workload import burst_period_ns, default_burst_size

        shares = config.resolved_shares()
        expected = min(
            burst_period_ns(
                config.total_rps * s,
                config.clients_per_server,
                default_burst_size(config.app),
            )
            for s in shares
        )
        assert w == expected

    def test_frontend_mode_window_is_dispatch_latency(self):
        config = frontend_config()
        assert conservative_window_ns(config) == 1 * MS

    def test_window_above_dispatch_latency_rejected(self):
        with pytest.raises(ValueError):
            ShardedDatacenterRun(
                frontend_config(), jobs=1, window_ns=2 * MS
            )


class TestShardParityClientMode:
    def test_shard_count_and_pool_invariance(self):
        config = client_config()
        serial = run_datacenter(replace(config, n_shards=1), jobs=1)
        sharded = run_datacenter(replace(config, n_shards=2), jobs=1)
        pooled = run_datacenter(replace(config, n_shards=2), jobs=2)
        assert record_sha(serial) == record_sha(sharded) == record_sha(pooled)
        assert serial.record.responses_received > 0

    def test_window_size_invariance(self):
        # Client mode has no inter-shard events: windows are pure sync
        # points and any size gives identical results.
        config = client_config(n_shards=2)
        default = run_datacenter(config, jobs=1)
        small = run_datacenter(config, jobs=1, window_ns=1 * MS)
        large = run_datacenter(config, jobs=1, window_ns=40 * MS)
        assert record_sha(default) == record_sha(small) == record_sha(large)

    def test_per_server_outcomes_match(self):
        config = client_config()
        serial = run_datacenter(replace(config, n_shards=1), jobs=1)
        pooled = run_datacenter(replace(config, n_shards=4), jobs=2)
        for a, b in zip(serial.servers, pooled.servers):
            assert a.server == b.server
            assert a.latency.count == b.latency.count
            if a.latency.count:  # nan != nan on idle servers
                assert a.latency.p99_ns == b.latency.p99_ns
            assert a.energy.energy_j == b.energy.energy_j
            assert a.utilization == b.utilization


class TestShardParityFrontendMode:
    def test_shard_count_and_pool_invariance(self):
        config = frontend_config()
        serial = run_datacenter(replace(config, n_shards=1), jobs=1)
        sharded = run_datacenter(replace(config, n_shards=4), jobs=1)
        pooled = run_datacenter(replace(config, n_shards=2), jobs=2)
        assert record_sha(serial) == record_sha(sharded) == record_sha(pooled)
        assert serial.record.responses_received > 0

    def test_bulk_and_scalar_datapath_agree(self):
        config = frontend_config(n_shards=2)
        bulk = run_datacenter(config, jobs=1, bulk_datapath=True)
        scalar = run_datacenter(config, jobs=1, bulk_datapath=False)
        assert record_sha(bulk) == record_sha(scalar)


class TestRecordedShardParity:
    def test_recorded_run_merges_identically(self):
        config = client_config()
        serial = run_datacenter(
            replace(config, n_shards=1), jobs=1, record_timeseries=True
        )
        pooled = run_datacenter(
            replace(config, n_shards=2), jobs=2, record_timeseries=True
        )
        assert serial.record.timeseries  # something was recorded
        assert record_sha(serial) == record_sha(pooled)

    def test_series_prefixed_by_server(self):
        config = client_config()
        result = run_datacenter(config, jobs=1, record_timeseries=True)
        names = {s["name"] for s in result.record.timeseries["series"]}
        assert any(n.startswith("server0.") for n in names)


class TestResultShape:
    def test_config_hash_independent_of_shards(self):
        config = client_config()
        serial = run_datacenter(replace(config, n_shards=1), jobs=1)
        sharded = run_datacenter(replace(config, n_shards=2), jobs=1)
        assert serial.record.config_hash == sharded.record.config_hash

    def test_shard_stats_reported(self):
        result = run_datacenter(client_config(n_shards=2), jobs=1)
        assert len(result.shards) == 2
        assert result.shards[0].server_indices == [0, 1]
        assert all(s.events > 0 for s in result.shards)
        assert all(s.wall_s > 0 for s in result.shards)
        assert result.shard_speedup >= 1.0

    def test_profile_attaches_per_shard(self):
        result = run_datacenter(
            client_config(n_shards=2), jobs=1, profile=True
        )
        assert all(s.profile for s in result.shards)

    def test_merged_record_round_trips_through_schema(self):
        from repro.harness.record import ResultRecord

        result = run_datacenter(
            client_config(n_shards=2), jobs=1, record_timeseries=True
        )
        clone = ResultRecord.from_json_dict(result.record.to_json_dict())
        assert clone.to_json_dict() == result.record.to_json_dict()
        assert clone.responses_received == result.record.responses_received
        assert clone.timeseries == result.record.timeseries
