"""Teach NCAP a custom wire protocol through the sysfs interface.

The paper's ReqMonitor registers are programmable: operators load the
byte templates of whatever requests are latency-critical for *their*
service.  This example defines a toy RPC protocol whose urgent calls start
with ``CALL`` (and whose bulk replication traffic starts with ``REPL``),
programs the NIC through sysfs exactly as a driver init script would, and
shows that only the urgent traffic trips the DecisionEngine.

Run:  python examples/custom_protocol_monitor.py
"""

from repro.cluster.node import ServerNode
from repro.net.packet import Frame
from repro.sim import RngRegistry, Simulator, TraceRecorder
from repro.sim.units import MS


def rpc_frame(kind: str, i: int) -> Frame:
    payload = f"{kind} method={i}".encode("ascii")
    return Frame(
        src="client0", dst="server", payload_bytes=len(payload),
        kind="request", payload_prefix=payload[:8], req_id=i,
    )


class SinkPort:
    """A stand-in wire: accepts transmitted responses and drops them."""

    queue_depth = 0

    def send(self, frame):
        pass


def main() -> None:
    sim = Simulator()
    server = ServerNode(
        sim, "server", policy="ncap.cons", app="memcached",
        rng=RngRegistry(3), trace=TraceRecorder(),
    )
    server.attach_port(SinkPort())
    server.start()

    # Program the template registers the way an operator would.
    sysfs_path = "/sys/class/net/server/ncap/templates"
    print(f"default templates : {server.sysfs.read(sysfs_path)}")
    server.sysfs.write(sysfs_path, "CALL")
    print(f"programmed        : {server.sysfs.read(sysfs_path)}")

    monitor = server.ncap_hw.req_monitor
    engine = server.engine

    # Phase 1: a flood of bulk replication traffic (not latency-critical).
    for i in range(200):
        sim.schedule_at(1 * MS + i * 2_000, server.nic.receive_frame,
                        rpc_frame("REPL", i))
    # Phase 2: a burst of urgent RPC calls.
    for i in range(200):
        sim.schedule_at(10 * MS + i * 2_000, server.nic.receive_frame,
                        rpc_frame("CALL", 1000 + i))

    sim.run(until=8 * MS)
    print("\nafter the REPL flood:")
    print(f"  packets inspected = {monitor.packets_inspected}")
    print(f"  requests counted  = {monitor.req_cnt}  (bulk traffic ignored)")
    print(f"  IT_HIGH posted    = {engine.it_high_posts}")
    assert engine.it_high_posts == 0

    sim.run(until=11 * MS)  # mid-burst
    print("\nduring the CALL burst:")
    print(f"  requests counted  = {monitor.req_cnt}")
    print(f"  IT_HIGH posted    = {engine.it_high_posts}  (boost triggered)")
    print(f"  package frequency = {server.package.frequency_hz / 1e9:.2f} GHz")
    assert engine.it_high_posts >= 1

    sim.run(until=25 * MS)  # burst over; IT_LOWs stepped F back down
    print("\nwell after the burst:")
    print(f"  IT_LOW posted     = {engine.it_low_posts}")
    print(f"  package frequency = {server.package.frequency_hz / 1e9:.2f} GHz")

    print("\nContext-awareness is the point: identical packet *rates*, "
          "opposite power decisions.")


if __name__ == "__main__":
    main()
