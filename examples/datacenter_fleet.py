"""NCAP across an imbalanced server fleet (Section 7 of the paper).

Production datacenters balance imperfectly: some servers run hot, many run
cold.  This example stands up four Apache servers behind one switch with a
45/30/15/10 load split, runs the fleet under the always-max baseline and
under NCAP, and prints per-server savings — demonstrating the paper's
point that NCAP's savings live exactly where the fleet is underutilized.

Run:  python examples/datacenter_fleet.py
"""

from repro.cluster.datacenter import DatacenterConfig
from repro.experiments import datacenter
from repro.sim.units import MS


def main() -> None:
    config = DatacenterConfig(
        app="apache",
        n_servers=4,
        load_shares=(0.45, 0.30, 0.15, 0.10),
        total_rps=120_000,
        warmup_ns=15 * MS,
        measure_ns=120 * MS,
        drain_ns=80 * MS,
    )
    print("running the fleet under perf (baseline) and ncap.cons...")
    rows = datacenter.run(config)
    print()
    print(datacenter.format_report(rows))
    print()
    print("The hotter the server, the less there is to save; the coldest")
    print("server keeps its SLA while shedding most of its energy.")


if __name__ == "__main__":
    main()
