"""Watch NCAP absorb a sudden burst after a long idle period.

Builds a server directly from the substrate (no experiment harness), puts
every core into C6 at the deepest P-state, fires a burst of Memcached GETs
after 5 ms of silence, and prints the microsecond-level timeline: when the
NIC saw the first packet, when NCAP posted its wake interrupt, when the
frequency reached P0, and when each phase of delivery happened — the
overlap that is the paper's headline mechanism.

Run:  python examples/memcached_burst_tolerance.py
"""

from repro.cluster.node import ServerNode
from repro.net import make_memcached_request
from repro.sim import RngRegistry, Simulator, TraceRecorder
from repro.sim.units import MS, US


class SinkPort:
    """A stand-in wire: accepts transmitted responses and drops them."""

    queue_depth = 0

    def send(self, frame):
        pass


def main() -> None:
    sim = Simulator()
    trace = TraceRecorder()
    server = ServerNode(
        sim, "server", policy="ncap.cons", app="memcached",
        rng=RngRegistry(7), trace=trace,
    )
    server.attach_port(SinkPort())
    server.start()

    timeline = []

    # Put the machine to sleep the way a long idle period would.
    def park():
        server.package.set_pstate(server.package.pstates.max_index)

    def sleep_cores():
        for core in server.package.cores:
            if core.is_idle:
                core.enter_sleep(server.package.cstates.by_name("C6"))
        timeline.append((sim.now, "all cores parked in C6, F at minimum"))

    sim.schedule_at(0, park)
    sim.schedule_at(1 * MS, sleep_cores)

    # Instrument delivery.
    first_delivery = []
    original_sink = server.driver.packet_sink

    def sink(frame):
        if not first_delivery:
            first_delivery.append(sim.now)
            timeline.append((sim.now, "first request delivered to memcached"))
        original_sink(frame)

    server.driver.packet_sink = sink

    # The burst: 120 GETs, back to back, after 5 ms of silence.
    burst_start = 5 * MS
    for i in range(120):
        sim.schedule_at(
            burst_start + i * 1_000,
            server.nic.receive_frame,
            make_memcached_request("client0", "server", key=f"k{i}", req_id=i),
        )
    timeline.append((burst_start, "burst of 120 GET packets hits the wire"))

    sim.run(until=12 * MS)

    engine = server.engine
    for t in engine.wake_interrupt_times():
        timeline.append((t, "NCAP posts proactive wake interrupt (IT_RX/IT_HIGH)"))
    freq = trace.event_channel("server.cpu.freq_ghz")
    for t, f in zip(freq.times, freq.values):
        timeline.append((t, f"frequency -> {f:.2f} GHz"))

    print("timeline (ms since start):")
    for t, event in sorted(timeline):
        print(f"  {t / 1e6:8.3f}  {event}")

    print()
    wake = engine.wake_interrupt_times()[0]
    print(f"NCAP woke the processor {max(0, (first_delivery[0] - wake)) / US:.0f} us "
          "before the first request reached the application —")
    print("the C-state exit and DVFS ramp ran *under* the NIC delivery latency.")
    print(f"engine stats: IT_HIGH={engine.it_high_posts}, "
          f"immediate IT_RX={engine.immediate_rx_posts}, "
          f"IT_LOW={engine.it_low_posts}")


if __name__ == "__main__":
    main()
