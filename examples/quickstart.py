"""Quickstart: run one NCAP experiment and read the results.

Simulates the paper's four-node cluster (three open-loop clients, one
Apache server) for ~a quarter of a simulated second under the hardware
NCAP policy, then prints latency percentiles, energy, and what the NCAP
DecisionEngine did.

Run:  python examples/quickstart.py
"""

from repro import ExperimentConfig, run_experiment
from repro.sim.units import MS


def main() -> None:
    config = ExperimentConfig(
        app="apache",            # or "memcached"
        policy="ncap.cons",      # perf | ond | perf.idle | ond.idle |
                                 # ncap.sw | ncap.cons | ncap.aggr
        target_rps=24_000,       # offered load across the three clients
        warmup_ns=20 * MS,
        measure_ns=200 * MS,
        drain_ns=80 * MS,
        seed=42,
    )
    result = run_experiment(config)

    print(f"policy            : {result.policy_name}")
    print(f"offered load      : {result.target_rps / 1000:.0f}K RPS "
          f"(achieved {result.achieved_rps / 1000:.1f}K)")
    print(f"requests measured : {result.responses_received} "
          f"({result.incomplete} still in flight)")
    print(f"latency p50/p95   : {result.latency.p50_ns / 1e6:.2f} / "
          f"{result.latency.p95_ns / 1e6:.2f} ms")
    print(f"SLA (p95 <= {result.sla_ns / 1e6:.0f} ms) : "
          f"{'met' if result.meets_sla else 'VIOLATED'}")
    print(f"processor energy  : {result.energy.energy_j:.2f} J "
          f"({result.avg_power_w:.1f} W average)")
    print(f"C-state entries   : {result.cstate_entries}")
    print(f"NCAP activity     : {result.ncap_stats}")

    residency = result.energy.residency_ns
    total = sum(residency.values())
    print("core-time breakdown:")
    for mode, ns in sorted(residency.items(), key=lambda kv: -kv[1]):
        print(f"  {mode:>7}: {100 * ns / total:5.1f}%")


if __name__ == "__main__":
    main()
