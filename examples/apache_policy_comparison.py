"""Compare all seven power-management policies on an Apache server.

Reproduces one load level of the paper's Figure 8 as a table: normalized
95th-percentile latency, energy relative to the always-max baseline, and
SLA verdicts.  Use ``--load medium`` / ``--load high`` to move along the
load axis and watch the savings shrink as idleness disappears.

Run:  python examples/apache_policy_comparison.py [--load low|medium|high]
"""

import argparse

from repro import POLICY_ORDER, ExperimentConfig, run_experiment
from repro.apps import load_level
from repro.metrics import format_table
from repro.sim.units import MS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--load", choices=("low", "medium", "high"), default="low")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    level = load_level("apache", args.load)
    print(f"Apache @ {args.load} load ({level.target_rps / 1000:.0f}K RPS), "
          f"SLA = {level.sla_ns / 1e6:.0f} ms p95\n")

    rows = []
    perf_energy = None
    for policy in POLICY_ORDER:
        result = run_experiment(
            ExperimentConfig(
                app="apache",
                policy=policy,
                target_rps=level.target_rps,
                warmup_ns=20 * MS,
                measure_ns=200 * MS,
                drain_ns=80 * MS,
                seed=args.seed,
            )
        )
        if perf_energy is None:
            perf_energy = result.energy.energy_j
        rows.append([
            policy,
            round(result.latency.p95_ns / 1e6, 2),
            round(result.latency.p95_ns / result.sla_ns, 3),
            round(result.energy.energy_j / perf_energy, 3),
            "ok" if result.meets_sla else "VIOLATED",
        ])
        print(f"  ran {policy}...")

    print()
    print(format_table(
        ["policy", "p95 (ms)", "p95 / SLA", "energy vs perf", "SLA"],
        rows,
    ))
    print("\nReading the table like the paper does:")
    print("- perf wastes energy idling at P0; C-states (perf.idle) help a lot;")
    print("- ond/ond.idle save energy but react late to bursts (higher p95);")
    print("- NCAP keeps near-perf latency at deep-sleep energy levels.")


if __name__ == "__main__":
    main()
